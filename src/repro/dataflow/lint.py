"""Static linter for mini-ISA programs (``repro lint``).

Runs the dataflow analyses over every function of a
:class:`~repro.isa.program.Program` and reports defects *before* any
VM fuel is burnt.  The rule catalogue (see ``docs/INTERNALS.md`` §6):

==========================  ========  =============================================
rule                        severity  what it catches
==========================  ========  =============================================
``uninitialized-read``      error     read of a register no path defines
``maybe-uninitialized``     warning   read defined on some but not all paths
``unreachable-block``       warning   block with no static path from the entry
``dead-store``              warning   instruction result never read (``%sink``
                                      registers are exempt -- the conventional
                                      annotation for intentional synthetic work)
``type-confusion``          error/    float value into a bitwise/shift/div/mod
                            warning   opcode (error); float into other int ALU
                                      ops, or definite int register into a float
                                      op (warning)
``unknown-callee``          error     call to a function the program lacks
``call-arity``              error     call argument count != callee parameter count
``bad-relation``            error     ``CondBr`` relation outside ``RELATIONS``
``duplicate-uid``           error     instruction uid reused across the program
``infinite-loop``           error     natural loop with no exit edge out of its
                                      body (after pruning branches decided by
                                      constant propagation) and no return/halt
``div-by-zero``             error     integer div/mod whose divisor is the
                                      constant 0
``unused-call-result``      info      bound call return value never read
``unused-param``            info      function parameter never read
``dead-function``           warning   function unreachable from the entry point
                                      via the static call graph (names starting
                                      with ``_`` are exempt -- the conventional
                                      annotation for intentionally-kept helpers,
                                      mirroring the ``%sink`` register prefix)
==========================  ========  =============================================

The linter never executes code and never raises on malformed programs
-- it is usable on programs that :meth:`Program.validate` would reject
(that is the point: the tests craft invalid programs with the raw
containers and check the linter sees what validate sees).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import (
    CondBr,
    FLOAT_OPS,
    INT_OPS,
    RELATIONS,
    Call,
    Halt,
    Instr,
    Return,
)
from ..isa.program import Function, Program
from .analyses import build_def_use_chains, dominators
from .cfgview import StaticCFG
from .solver import solve
from .values import (
    FLOAT,
    INT,
    ConstProp,
    TypeInference,
    _eval_const,
    branch_decided,
    instruction_type_env,
)

#: registers whose names start with this prefix are intentional sinks:
#: the dead-store rule ignores writes to them
SINK_PREFIX = "%sink"

#: functions whose names start with this prefix are intentionally kept
#: even when no call path reaches them (the function-level analogue of
#: ``%sink``): the dead-function rule ignores them
KEEP_PREFIX = "_"

#: int opcodes where operating on floats is meaningless, not just lossy
_BIT_LEVEL_OPS = frozenset("and or xor shl shr div mod".split())

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, machine-readable."""

    severity: str          # "error" | "warning" | "info"
    rule: str
    function: str
    block: Optional[str]
    uid: Optional[int]     # instruction uid when the finding has one
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "severity": self.severity,
            "rule": self.rule,
            "function": self.function,
            "block": self.block,
            "uid": self.uid,
            "message": self.message,
        }

    def render(self) -> str:
        where = self.function
        if self.block is not None:
            where += f"/{self.block}"
        if self.uid is not None and self.uid >= 0:
            where += f"#u{self.uid}"
        return f"{self.severity}: [{self.rule}] {where}: {self.message}"


@dataclass
class LintReport:
    """All findings for one program."""

    program: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, diags: List[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity("error")

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity("warning")

    @property
    def clean(self) -> bool:
        """No errors and no warnings (infos allowed)."""
        return not self.errors and not self.warnings

    def rules_hit(self) -> Set[str]:
        return {d.rule for d in self.diagnostics}

    def sorted(self) -> List[Diagnostic]:
        rank = {s: i for i, s in enumerate(SEVERITIES)}
        return sorted(
            self.diagnostics,
            key=lambda d: (
                rank.get(d.severity, len(SEVERITIES)),
                d.function,
                d.block or "",
                d.uid if d.uid is not None else -1,
                d.rule,
            ),
        )

    def render(self) -> str:
        lines = [d.render() for d in self.sorted()]
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_info = len(self.by_severity("info"))
        lines.append(
            f"{self.program}: {n_err} error(s), {n_warn} warning(s), "
            f"{n_info} info(s)"
        )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.as_dict() for d in self.sorted()],
        }


def lint_program(program: Program) -> LintReport:
    """Lint every function of ``program``; never raises on bad input."""
    report = LintReport(program=program.name)
    _check_duplicate_uids(program, report)
    _check_dead_functions(program, report)
    for fn in program.functions.values():
        _lint_function(program, fn, report)
    return report


# -- program-wide rules ------------------------------------------------------------


def _check_duplicate_uids(program: Program, report: LintReport) -> None:
    seen: Dict[int, Tuple[str, str]] = {}
    for fn, bb, ins in program.all_instrs():
        if ins.uid in seen:
            first_fn, first_bb = seen[ins.uid]
            report.diagnostics.append(
                Diagnostic(
                    "error",
                    "duplicate-uid",
                    fn.name,
                    bb.name,
                    ins.uid,
                    f"uid {ins.uid} already used in {first_fn}/{first_bb}",
                )
            )
        else:
            seen[ins.uid] = (fn.name, bb.name)


def _check_dead_functions(program: Program, report: LintReport) -> None:
    """Functions no static call path from the entry point reaches.

    Reachability is the transitive closure of ``Call`` terminators from
    ``program.main`` (calls terminate blocks in the mini-ISA, so
    scanning terminators is exhaustive -- the same closure the
    incremental slicer walks).  Functions whose names start with
    :data:`KEEP_PREFIX` are exempt, as are all functions when the entry
    point itself is missing (validate-level breakage: there is no
    meaningful root to walk from).
    """
    from ..isa.fingerprint import static_callees

    entry = program.functions.get(program.main)
    if entry is None:
        return
    reachable: Set[str] = {program.main}
    stack = [entry]
    while stack:
        fn = stack.pop()
        for callee in static_callees(fn):
            if callee in reachable or callee not in program.functions:
                continue
            reachable.add(callee)
            stack.append(program.functions[callee])
    for name in program.functions:
        if name in reachable or name.startswith(KEEP_PREFIX):
            continue
        report.diagnostics.append(
            Diagnostic(
                "warning",
                "dead-function",
                name,
                None,
                None,
                f"no call path from entry point {program.main!r} reaches "
                f"this function (name it {KEEP_PREFIX}... if intentional)",
            )
        )


# -- per-function rules ------------------------------------------------------------


def _lint_function(program: Program, fn: Function, report: LintReport) -> None:
    cfg = StaticCFG(fn)
    diag = report.diagnostics

    for name in fn.blocks:
        if name not in cfg.reachable:
            diag.append(
                Diagnostic(
                    "warning",
                    "unreachable-block",
                    fn.name,
                    name,
                    None,
                    "no static path from the entry reaches this block",
                )
            )

    _check_terminators(program, fn, cfg, report)
    if not cfg.rpo:
        return  # entry missing: validate-level breakage, nothing to solve

    chains = build_def_use_chains(fn)
    _check_uninitialized(fn, chains, report)
    _check_dead_defs(fn, chains, report)

    const_sol = solve(ConstProp(), cfg)
    type_sol = solve(TypeInference(), cfg)
    _check_types_and_constants(fn, cfg, const_sol, type_sol, report)
    _check_loops(fn, cfg, const_sol, report)


def _check_terminators(
    program: Program, fn: Function, cfg: StaticCFG, report: LintReport
) -> None:
    for name, bb in fn.blocks.items():
        term = bb.terminator
        if isinstance(term, CondBr) and term.rel not in RELATIONS:
            report.diagnostics.append(
                Diagnostic(
                    "error",
                    "bad-relation",
                    fn.name,
                    name,
                    None,
                    f"relation {term.rel!r} is not one of {', '.join(RELATIONS)}",
                )
            )
        if isinstance(term, Call):
            callee = program.functions.get(term.callee)
            if callee is None:
                report.diagnostics.append(
                    Diagnostic(
                        "error",
                        "unknown-callee",
                        fn.name,
                        name,
                        None,
                        f"call to unknown function {term.callee!r}",
                    )
                )
            elif len(term.args) != len(callee.params):
                report.diagnostics.append(
                    Diagnostic(
                        "error",
                        "call-arity",
                        fn.name,
                        name,
                        None,
                        f"call to {term.callee!r} passes {len(term.args)} "
                        f"argument(s), expected {len(callee.params)}",
                    )
                )


def _check_uninitialized(
    fn: Function, chains, report: LintReport
) -> None:
    for use in chains.undefined_uses:
        report.diagnostics.append(
            Diagnostic(
                "error",
                "uninitialized-read",
                fn.name,
                use.block,
                use.uid if use.uid >= 0 else None,
                f"register {use.reg!r} is read but never defined on any path",
            )
        )
    seen: Set[Tuple[str, int, str]] = set()
    for use in chains.maybe_undefined_uses:
        key = (use.block, use.uid, use.reg)
        if key in seen:
            continue
        seen.add(key)
        report.diagnostics.append(
            Diagnostic(
                "warning",
                "maybe-uninitialized",
                fn.name,
                use.block,
                use.uid if use.uid >= 0 else None,
                f"register {use.reg!r} may be read before it is defined "
                f"(defined on some paths only)",
            )
        )


def _check_dead_defs(fn: Function, chains, report: LintReport) -> None:
    block_of_uid: Dict[int, str] = {}
    for name, bb in fn.blocks.items():
        for ins in bb.instrs:
            block_of_uid[ins.uid] = name
    for site in chains.dead_defs():
        if site.reg.startswith(SINK_PREFIX):
            continue
        if site.kind == "param":
            report.diagnostics.append(
                Diagnostic(
                    "info",
                    "unused-param",
                    fn.name,
                    None,
                    None,
                    f"parameter {site.reg!r} is never read",
                )
            )
        elif site.kind == "call":
            report.diagnostics.append(
                Diagnostic(
                    "info",
                    "unused-call-result",
                    fn.name,
                    str(site.where),
                    None,
                    f"call result bound to {site.reg!r} is never read",
                )
            )
        else:
            report.diagnostics.append(
                Diagnostic(
                    "warning",
                    "dead-store",
                    fn.name,
                    block_of_uid.get(int(site.where)),
                    int(site.where),
                    f"value written to {site.reg!r} is never read "
                    f"(name it {SINK_PREFIX}... if intentional)",
                )
            )


def _check_types_and_constants(
    fn: Function, cfg: StaticCFG, const_sol, type_sol, report: LintReport
) -> None:
    type_env = instruction_type_env(cfg, type_sol.entry)
    for b in cfg.rpo:
        const_env = dict(const_sol.entry[b].env)
        for ins in cfg.block(b).instrs:
            _check_instr_types(fn, b, ins, type_env.get(ins.uid, {}), report)
            if ins.opcode in ("div", "mod"):
                divisor = ins.srcs[1]
                if isinstance(divisor, str):
                    divisor = const_env.get(divisor)
                if divisor == 0 and isinstance(divisor, int):
                    report.diagnostics.append(
                        Diagnostic(
                            "error",
                            "div-by-zero",
                            fn.name,
                            b,
                            ins.uid,
                            f"{ins.opcode} by the constant 0",
                        )
                    )
            if ins.dest is not None:
                const_env[ins.dest] = _eval_const(ins, const_env)


def _check_instr_types(
    fn: Function, block: str, ins: Instr, env: Dict[str, object], report: LintReport
) -> None:
    op = ins.opcode
    int_op = op in INT_OPS and op != "ftoi"
    float_op = op in FLOAT_OPS and op != "itof"
    if not (int_op or float_op):
        return
    for reg in ins.reg_reads():
        t = env.get(reg)
        if int_op and t is FLOAT:
            severity = "error" if op in _BIT_LEVEL_OPS else "warning"
            report.diagnostics.append(
                Diagnostic(
                    severity,
                    "type-confusion",
                    fn.name,
                    block,
                    ins.uid,
                    f"integer opcode {op!r} reads float register {reg!r}",
                )
            )
        elif float_op and t is INT:
            report.diagnostics.append(
                Diagnostic(
                    "warning",
                    "type-confusion",
                    fn.name,
                    block,
                    ins.uid,
                    f"float opcode {op!r} reads integer register {reg!r} "
                    f"(use itof)",
                )
            )


def _check_loops(
    fn: Function, cfg: StaticCFG, const_sol, report: LintReport
) -> None:
    """Natural loops with no way out.

    Successor edges pruned by constant propagation (a ``CondBr`` whose
    relation is decided by constants) do not count as exits; a
    ``Return``/``Halt`` terminator inside the body does.
    """
    doms = dominators(cfg)
    back_edges = [
        (src, dst)
        for src in cfg.rpo
        for dst in cfg.succs.get(src, ())
        if dst in doms.get(src, frozenset())
    ]
    seen_headers: Set[str] = set()
    for tail, header in back_edges:
        if header in seen_headers:
            continue
        seen_headers.add(header)
        body = _natural_loop(cfg, tail, header)
        if _loop_can_exit(fn, cfg, body, const_sol):
            continue
        report.diagnostics.append(
            Diagnostic(
                "error",
                "infinite-loop",
                fn.name,
                header,
                None,
                f"loop headed at {header!r} has no reachable exit "
                f"({len(body)} block(s) in the body)",
            )
        )


def _natural_loop(cfg: StaticCFG, tail: str, header: str) -> Set[str]:
    body = {header, tail}
    stack = [tail]
    while stack:
        b = stack.pop()
        for p in cfg.preds.get(b, ()):
            if p not in body and p in cfg.reachable:
                body.add(p)
                stack.append(p)
    return body


def _loop_can_exit(
    fn: Function, cfg: StaticCFG, body: Set[str], const_sol
) -> bool:
    for b in body:
        term = fn.blocks[b].terminator
        if isinstance(term, (Return, Halt)):
            return True
        succs = cfg.succs.get(b, ())
        if isinstance(term, CondBr) and term.rel in RELATIONS:
            # exit fact = constants after the block's own instructions
            decided = branch_decided(term, const_sol.exit[b])
            if decided is True:
                succs = (term.taken,)
            elif decided is False:
                succs = (term.not_taken,)
        for s in succs:
            if s not in body:
                return True
    return False
