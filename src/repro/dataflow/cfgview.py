"""Static CFG view of one function.

The dynamic pipeline discovers CFGs by execution
(:mod:`repro.cfg.builder`); the dataflow framework instead needs the
*static* graph -- every block and every edge the terminators admit,
executed or not.  :class:`StaticCFG` materializes that view once per
function and precomputes the orderings the worklist solver wants
(reverse post-order for forward problems, its reverse for backward
ones) plus reachability from the entry.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..isa.instructions import Call, CondBr, Halt, Instr, Return
from ..isa.program import BasicBlock, Function


class StaticCFG:
    """Blocks, edges, and orderings of one function's static CFG."""

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.entry = fn.entry
        self.succs: Dict[str, Tuple[str, ...]] = {}
        self.preds: Dict[str, List[str]] = {name: [] for name in fn.blocks}
        for name, bb in fn.blocks.items():
            succ = bb.successors() if bb.terminator is not None else ()
            self.succs[name] = succ
            for s in succ:
                if s in self.preds:
                    self.preds[s].append(name)
        self.rpo: List[str] = self._rpo()
        self.rpo_index: Dict[str, int] = {b: i for i, b in enumerate(self.rpo)}
        #: blocks reachable from the entry (the solver iterates these;
        #: unreachable blocks are a lint finding, not solver input)
        self.reachable: Set[str] = set(self.rpo)

    def _rpo(self) -> List[str]:
        order: List[str] = []
        seen: Set[str] = set()
        if self.entry not in self.fn.blocks:
            return order
        stack: List[Tuple[str, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            v, i = stack[-1]
            succ = self.succs.get(v, ())
            if i < len(succ):
                stack[-1] = (v, i + 1)
                w = succ[i]
                if w not in seen and w in self.fn.blocks:
                    seen.add(w)
                    stack.append((w, 0))
            else:
                stack.pop()
                order.append(v)
        order.reverse()
        return order

    def block(self, name: str) -> BasicBlock:
        return self.fn.blocks[name]

    def exit_blocks(self) -> List[str]:
        """Reachable blocks ending the function (Return/Halt)."""
        return [
            b
            for b in self.rpo
            if isinstance(self.fn.blocks[b].terminator, (Return, Halt))
        ]


def terminator_uses(term) -> Tuple[str, ...]:
    """Registers a terminator reads."""
    if isinstance(term, CondBr):
        return tuple(x for x in (term.a, term.b) if isinstance(x, str))
    if isinstance(term, Call):
        return tuple(a for a in term.args if isinstance(a, str))
    if isinstance(term, Return):
        return (term.value,) if isinstance(term.value, str) else ()
    return ()


def terminator_defs(term) -> Tuple[str, ...]:
    """Registers a terminator writes (a call's return-value binding;
    the value materializes in the continuation block, which is the
    call-site block's only successor, so modeling the def at block end
    is exact)."""
    if isinstance(term, Call) and term.dest is not None:
        return (term.dest,)
    return ()


def block_uses_defs(
    bb: BasicBlock,
) -> Tuple[Tuple[Tuple[Instr, Tuple[str, ...]], ...], Tuple[str, ...]]:
    """Per-instruction register reads plus the block's terminator reads
    folded in as a pseudo-instruction (``None`` instr)."""
    items = tuple((ins, ins.reg_reads()) for ins in bb.instrs)
    return items, terminator_uses(bb.terminator)
