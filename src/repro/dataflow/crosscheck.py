"""Dynamic-vs-static soundness cross-checker (``--crosscheck``).

The dynamic pipeline makes three kinds of claims a static analysis can
audit, and one kind an *independent re-execution* can audit.  This
module runs all four sanitizers over a finished
:class:`~repro.pipeline.AnalysisResult`:

1. **Recount** -- re-run Instrumentation II on the *opposite* engine
   with a trivial counting sink and compare every statement and
   dependence stream's point count against the folded DDG.  A missing
   stream is a dropped dependence, an extra one an invented
   dependence, a count mismatch a folding/batching bug.  Because the
   counting sink shares nothing with the folding machinery, agreement
   is meaningful.
2. **Dependence shape** -- every dynamic DDG edge must lie inside the
   static may-dependence relation: its endpoint uids must exist, the
   kinds must match the opcodes (flow: store->load, anti: load->store,
   output: store->store, reg: producer writes a register the consumer
   reads), and for register dependences the producer's definition site
   must statically *reach* the consumer's use (the
   :mod:`repro.dataflow` reaching-definitions fixpoint).
3. **Affine agreement** -- every access that
   :func:`~repro.staticpoly.static_affine_access_uids` proves affine
   must have folded to a piecewise-affine access function whenever the
   profile was exact (unclamped).  Statically provable but dynamically
   unfoldable means the folder lost an affine pattern.
4. **Parallel claims** -- every loop the schedule analysis marked
   parallel must have an empty loop-carried dependence slice at its
   depth.  Verified *exactly* on the folded relations by polyhedral
   emptiness (piece ∩ {outer deltas = 0} ∩ {this delta >= 1 or <= -1}),
   independently of the sign-pattern machinery that produced the claim.

All checks are read-only: a crosschecked analysis result is bit-
identical to an unchecked one (tests/integration asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ddg.graph import DDGSink, DepKey, Statement, StmtKey
from ..isa.instructions import Instr
from ..isa.program import Program
from ..poly.affine import AffineExpr
from .analyses import DefSite, build_def_use_chains

#: check identifiers, in report order
CHECKS = ("recount", "dep-shape", "affine-static", "parallel-claim")


@dataclass(frozen=True)
class Violation:
    """One soundness violation found by the cross-checker."""

    check: str      # one of CHECKS
    where: str      # stream / statement / loop the violation is at
    message: str

    def render(self) -> str:
        return f"[{self.check}] {self.where}: {self.message}"

    def as_dict(self) -> Dict[str, str]:
        return {"check": self.check, "where": self.where,
                "message": self.message}


@dataclass
class CheckOptions:
    """Which sanitizers to run (all, by default)."""

    recount: bool = True
    dep_shape: bool = True
    affine_static: bool = True
    parallel_claims: bool = True
    fuel: int = 50_000_000


@dataclass
class CrosscheckReport:
    """Outcome of one cross-check run."""

    workload: str
    engine: str              # engine the analysis ran on
    recount_engine: Optional[str] = None  # opposite engine, when run
    checks_run: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    #: per-check work counters (streams compared, deps checked, ...)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violations_for(self, check: str) -> List[Violation]:
        return [v for v in self.violations if v.check == check]

    def render(self) -> str:
        lines = [
            f"crosscheck {self.workload} (engine={self.engine}"
            + (f", recount on {self.recount_engine}" if self.recount_engine
               else "")
            + f"): {'OK' if self.ok else 'VIOLATIONS'}"
        ]
        for check in CHECKS:
            if check not in self.checks_run:
                continue
            vs = self.violations_for(check)
            lines.append(f"  {check}: {'ok' if not vs else f'{len(vs)} violation(s)'}")
            for v in vs[:10]:
                lines.append(f"    {v.where}: {v.message}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "ok": self.ok,
            "checks_run": list(self.checks_run),
            "violations": [v.as_dict() for v in self.violations],
            "stats": dict(self.stats),
        }


class CountingSink(DDGSink):
    """The minimal sink: per-stream point counts, nothing else.

    Shares no code with the folding sinks, so its counts are an
    independent witness of what Instrumentation II emitted.
    """

    def __init__(self) -> None:
        self.statements: Dict[StmtKey, Statement] = {}
        self.stmt_counts: Dict[StmtKey, int] = {}
        self.dep_counts: Dict[DepKey, int] = {}

    def declare_statement(self, stmt: Statement) -> None:
        self.statements.setdefault(stmt.key, stmt)

    def instr_point(self, key, coords, label):
        self.stmt_counts[key] = self.stmt_counts.get(key, 0) + 1

    def dep_point(self, dep, dst_coords, src_coords):
        self.dep_counts[dep] = self.dep_counts.get(dep, 0) + 1

    # batched entry points: bump by the batch, skip per-point dispatch
    def instr_points(self, coords, items):
        counts = self.stmt_counts
        for key, _label in items:
            counts[key] = counts.get(key, 0) + 1

    def dep_points(self, dst_coords, items):
        counts = self.dep_counts
        for dep, _src in items:
            counts[dep] = counts.get(dep, 0) + 1


def opposite_engine(engine: str) -> str:
    return "reference" if engine == "fast" else "fast"


def run_crosscheck(result, options: Optional[CheckOptions] = None):
    """Run the sanitizers over a finished analysis result."""
    opts = options or CheckOptions()
    report = CrosscheckReport(
        workload=result.spec.name,
        engine=getattr(result, "engine", "fast"),
    )
    if opts.recount:
        report.checks_run.append("recount")
        _check_recount(result, opts, report)
    if opts.dep_shape:
        report.checks_run.append("dep-shape")
        _check_dep_shape(result, report)
    if opts.affine_static:
        report.checks_run.append("affine-static")
        _check_affine_static(result, report)
    if opts.parallel_claims:
        report.checks_run.append("parallel-claim")
        _check_parallel_claims(result, report)
    return report


# -- check 1: independent recount on the opposite engine ---------------------------


def _check_recount(result, opts: CheckOptions, report: CrosscheckReport) -> None:
    from ..pipeline import profile_ddg

    engine = opposite_engine(report.engine)
    report.recount_engine = engine
    sink = CountingSink()
    profile_ddg(
        result.spec,
        result.control,
        sink=sink,
        track_anti_output=getattr(result, "track_anti_output", True),
        build_schedule_tree=False,
        fuel=opts.fuel,
        engine=engine,
    )
    folded = result.folded

    def stmt_name(key: StmtKey) -> str:
        return f"stmt u{key[0]}/c{key[1]}"

    def dep_name(dep: DepKey) -> str:
        return (
            f"dep {dep.kind} u{dep.src[0]}/c{dep.src[1]}"
            f" -> u{dep.dst[0]}/c{dep.dst[1]}"
        )

    report.stats["recount_statements"] = len(sink.stmt_counts)
    report.stats["recount_deps"] = len(sink.dep_counts)
    for key, n in sink.stmt_counts.items():
        fs = folded.statements.get(key)
        if fs is None:
            report.violations.append(Violation(
                "recount", stmt_name(key),
                f"statement dropped by the folded DDG ({n} point(s) recounted)",
            ))
        elif fs.count != n:
            report.violations.append(Violation(
                "recount", stmt_name(key),
                f"folded count {fs.count} != recounted {n}",
            ))
    for key in folded.statements:
        if key not in sink.stmt_counts:
            report.violations.append(Violation(
                "recount", stmt_name(key),
                "folded statement never emitted by the recount run",
            ))
    for dep, n in sink.dep_counts.items():
        fd = folded.deps.get(dep)
        if fd is None:
            report.violations.append(Violation(
                "recount", dep_name(dep),
                f"dependence dropped by the folded DDG ({n} point(s) recounted)",
            ))
        elif fd.count != n:
            report.violations.append(Violation(
                "recount", dep_name(dep),
                f"folded count {fd.count} != recounted {n}",
            ))
    for dep in folded.deps:
        if dep not in sink.dep_counts:
            report.violations.append(Violation(
                "recount", dep_name(dep),
                "folded dependence never emitted by the recount run "
                "(invented edge)",
            ))


# -- check 2: every dynamic edge inside the static may-dependence relation ---------


def _binding_edges(program: Program) -> Dict[Tuple[str, str], Set[Tuple[str, str]]]:
    """Static register-binding graph: (func, reg) -> (func, reg) edges
    along which a value crosses a frame boundary (caller argument to
    callee parameter, callee return value to caller destination).
    This is how the DDG builder threads register defs across calls, so
    the static may-dependence relation for registers is reachability
    in this graph plus intra-function def->use reach."""
    from ..isa.instructions import Call as CallT, Return as ReturnT

    edges: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
    returns: Dict[str, Set[str]] = {}
    for fn in program.functions.values():
        for bb in fn.blocks.values():
            term = bb.terminator
            if isinstance(term, ReturnT) and isinstance(term.value, str):
                returns.setdefault(fn.name, set()).add(term.value)
    for fn in program.functions.values():
        for bb in fn.blocks.values():
            term = bb.terminator
            if not isinstance(term, CallT):
                continue
            callee = program.functions.get(term.callee)
            if callee is None:
                continue
            for param, arg in zip(callee.params, term.args):
                if isinstance(arg, str):
                    edges.setdefault((fn.name, arg), set()).add(
                        (callee.name, param)
                    )
            if term.dest is not None:
                for v in returns.get(callee.name, ()):
                    edges.setdefault((callee.name, v), set()).add(
                        (fn.name, term.dest)
                    )
    return edges


def _check_dep_shape(result, report: CrosscheckReport) -> None:
    program: Program = result.spec.program
    instr_of: Dict[int, Tuple[str, Instr]] = {}
    for fn, _bb, ins in program.all_instrs():
        instr_of[ins.uid] = (fn.name, ins)

    # per-function static def->use reachability for register deps
    chains_cache: Dict[str, object] = {}
    binding = _binding_edges(program)

    def rd_reaches(func: str, src: Instr, dst: Instr) -> bool:
        chains = chains_cache.get(func)
        if chains is None:
            chains = build_def_use_chains(program.functions[func])
            chains_cache[func] = chains
        site = DefSite("instr", src.dest, src.uid)
        return any(
            u.uid == dst.uid and u.reg == src.dest
            for u in chains.uses_of.get(site, ())
        )

    def binding_reaches(src_fn: str, src: Instr, dst_fn: str, dst: Instr) -> bool:
        """May the value cross frames from (src_fn, src.dest) to a
        register ``dst`` reads?  Reachability over the binding graph."""
        targets = {(dst_fn, r) for r in dst.reg_reads()}
        start = (src_fn, src.dest)
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in binding.get(node, ()):
                if nxt in targets:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def reg_dep_reaches(src_fn: str, src: Instr, dst_fn: str, dst: Instr) -> bool:
        if src_fn == dst_fn and rd_reaches(src_fn, src, dst):
            return True
        # recursion and cross-function deps go through call bindings
        return binding_reaches(src_fn, src, dst_fn, dst)

    n = 0
    for dep in result.folded.deps.values():
        n += 1
        src_uid, dst_uid = dep.key.src[0], dep.key.dst[0]
        where = f"dep {dep.key.kind} u{src_uid} -> u{dst_uid}"
        if src_uid not in instr_of or dst_uid not in instr_of:
            missing = src_uid if src_uid not in instr_of else dst_uid
            report.violations.append(Violation(
                "dep-shape", where,
                f"endpoint uid {missing} does not exist in the program",
            ))
            continue
        src_fn, src = instr_of[src_uid]
        dst_fn, dst = instr_of[dst_uid]
        kind = dep.key.kind
        if kind == "flow" and not (src.is_store and dst.is_load):
            report.violations.append(Violation(
                "dep-shape", where,
                f"flow dependence endpoints are {src.opcode}/{dst.opcode}, "
                "expected store -> load",
            ))
        elif kind == "anti" and not (src.is_load and dst.is_store):
            report.violations.append(Violation(
                "dep-shape", where,
                f"anti dependence endpoints are {src.opcode}/{dst.opcode}, "
                "expected load -> store",
            ))
        elif kind == "output" and not (src.is_store and dst.is_store):
            report.violations.append(Violation(
                "dep-shape", where,
                f"output dependence endpoints are {src.opcode}/{dst.opcode}, "
                "expected store -> store",
            ))
        elif kind == "reg":
            if src.dest is None:
                report.violations.append(Violation(
                    "dep-shape", where,
                    f"register dependence from {src.opcode}, which defines "
                    "no register",
                ))
            elif not reg_dep_reaches(src_fn, src, dst_fn, dst):
                report.violations.append(Violation(
                    "dep-shape", where,
                    f"definition of {src.dest!r} at u{src_uid} ({src_fn}) "
                    f"does not statically reach any register u{dst_uid} "
                    f"({dst_fn}) reads -- outside the may-dependence "
                    "relation",
                ))
    report.stats["deps_shape_checked"] = n


# -- check 3: statically affine accesses must fold affine --------------------------


def _check_affine_static(result, report: CrosscheckReport) -> None:
    from ..staticpoly import static_affine_access_uids

    affine_uids = static_affine_access_uids(result.spec.program)
    checked = 0
    for fs in result.folded.statements.values():
        if fs.stmt.uid not in affine_uids:
            continue
        checked += 1
        if not fs.exact:
            continue  # clamped / over-approximated: nothing provable
        if fs.had_label and not fs.label_affine:
            report.violations.append(Violation(
                "affine-static",
                f"stmt u{fs.stmt.uid}/c{fs.key[1]} ({fs.stmt.instr.opcode})",
                "statically affine access did not fold to an affine "
                "access function",
            ))
    report.stats["affine_sites_checked"] = checked


# -- check 4: parallel claims verified by polyhedral emptiness ---------------------

#: recomputed here (not imported from schedule.deps) so the reduction
#: discount is independent of the machinery under audit
_ASSOCIATIVE = frozenset("add mul fadd fmul fmin fmax and or xor".split())


def _is_reduction_dep(result, dep) -> bool:
    if dep.key.kind != "reg" or dep.key.src != dep.key.dst:
        return False
    stmt = result.folded.statements[dep.key.dst].stmt
    return stmt.instr.opcode in _ASSOCIATIVE


def _carried_at_level(dep, level: int) -> Optional[bool]:
    """Can this folded dependence be carried exactly at ``level``?

    Exact polyhedral emptiness over the folded relation: a piece
    restricted to zero outer deltas and a nonzero delta at ``level``.
    Returns None when the relation did not fold (undecidable here).
    """
    d = dep.dst_depth

    def delta_row(j: int, fn_j) -> Tuple[int, ...]:
        e = AffineExpr.var(j, d) - fn_j
        if not e.is_integral():
            # clearing the (positive) denominator preserves the sign
            e = AffineExpr(e.coeffs, e.const, 1)
        return e.as_row()

    # per piece: the polyhedron, the *known* outer delta rows (unknown
    # components are simply unconstrained -- an over-approximation, so
    # an empty intersection still soundly refutes carriage), and the
    # delta row at ``level`` (None when that component is unknown)
    pieces: List[
        Tuple[object, List[Tuple[int, ...]], Optional[Tuple[int, ...]]]
    ] = []
    if dep.relation is not None:
        for poly, fn in dep.relation.pieces:
            outer = [delta_row(j, fn[j]) for j in range(level)]
            pieces.append((poly, outer, delta_row(level, fn[level])))
    elif dep.partial_src is not None:
        exprs = dep.partial_src
        outer = [
            delta_row(j, exprs[j])
            for j in range(level)
            if j < len(exprs) and exprs[j] is not None
        ]
        lrow = (
            delta_row(level, exprs[level])
            if level < len(exprs) and exprs[level] is not None
            else None
        )
        for poly in dep.domain.pieces:
            pieces.append((poly, outer, lrow))
    else:
        return None

    undecided = False
    for poly, outer_rows, lrow in pieces:
        constrained = poly
        for row in outer_rows:
            constrained = constrained.add_constraint(row, is_eq=True)
        if constrained.is_empty():
            continue  # some outer delta is always nonzero: not carried here
        if lrow is None:
            undecided = True  # outer zeros possible, level delta unknown
            continue
        coeffs, k = lrow[:-1], lrow[-1]
        pos = constrained.add_constraint(coeffs + (k - 1,))      # delta >= 1
        if not pos.is_empty():
            return True
        neg_coeffs = tuple(-c for c in coeffs)
        neg = constrained.add_constraint(neg_coeffs + (-k - 1,))  # delta <= -1
        if not neg.is_empty():
            return True
    return None if undecided else False


def _check_parallel_claims(result, report: CrosscheckReport) -> None:
    forest = result.forest
    claims = 0
    for node in forest.walk():
        if not (node.parallel or node.parallel_reduction):
            continue
        claims += 1
        level = node.depth - 1
        where = "loop " + "/".join(p[-1] for p in node.path)
        for dv in forest.deps_under(node.path):
            reduction_only = not node.parallel
            if reduction_only and _is_reduction_dep(result, dv.dep):
                continue
            carried = _carried_at_level(dv.dep, level)
            kind = dv.dep.key.kind
            dep_desc = (
                f"{kind} u{dv.dep.key.src[0]} -> u{dv.dep.key.dst[0]}"
            )
            claim = "parallel" if node.parallel else "parallel-reduction"
            if carried is True:
                report.violations.append(Violation(
                    "parallel-claim", where,
                    f"claimed {claim} but dependence {dep_desc} is carried "
                    f"at depth {level + 1}",
                ))
            elif carried is None:
                report.violations.append(Violation(
                    "parallel-claim", where,
                    f"claimed {claim} but dependence {dep_desc} has no "
                    f"affine relation to justify it",
                ))
    report.stats["parallel_claims_checked"] = claims
