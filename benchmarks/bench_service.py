"""Analysis-service benchmark: concurrency, dedup, warm restarts,
process-pool scale-out, and routed replicas.

Boots real daemons on ephemeral loopback ports and drives them with
the stdlib client, gating the service PRs' headline claims:

* **concurrency** -- at least 8 simultaneous submissions of distinct
  workloads complete with zero errors;
* **dedup** -- N identical concurrent submissions coalesce onto one
  job and execute the pipeline exactly once;
* **warm restart** -- a fresh daemon pointed at the cache directory a
  previous daemon populated serves the same requests at least **10x**
  faster end-to-end (HTTP round trips, queueing, polling, and artifact
  decode all included in the warm time);
* **scale-out** -- 64 concurrent clients submitting unique cold jobs
  over the Rodinia set: ``--execution process`` must beat
  ``--execution thread`` by **2.5x** throughput on hosts with >= 4
  cores (``REPRO_SERVICE_GATE`` overrides; on smaller hosts the gate
  is recorded as skipped and the honest numbers still written --
  worker processes cannot beat the GIL without cores to run on), with
  zero errors and exactly-once execution per unique submission;
* **routed replicas** -- two process-mode replicas behind the
  consistent-hash router serve every report byte-identical to a
  standalone daemon, again exactly-once.

Writes ``BENCH_service.json``.
"""

import json
import os
import shutil
import tempfile
import threading
import time

from _harness import emit, format_table, once, results_path
from repro.service import (
    AnalysisService,
    ServiceClient,
    ServiceConfig,
    parse_samples,
)
from repro.service.router import AnalysisRouter, RouterConfig
from repro.workloads import rodinia_workloads

#: how many simultaneous clients the concurrency/dedup phases use
CONCURRENCY = 8

#: how many simultaneous clients the scale phase uses
SCALE_CLIENTS = 64

#: warm repetitions (best-of; noise is additive)
WARM_ROUNDS = 3

#: required cold/warm end-to-end speedup through the service
GATE_WARM = 10.0

CPUS = os.cpu_count() or 1


def _scale_gate():
    """(threshold, enforced, why) for process-vs-thread throughput --
    hardware-conditional like the parallel-fold gate."""
    env = os.environ.get("REPRO_SERVICE_GATE")
    if env:
        return float(env), True, f"REPRO_SERVICE_GATE={env}"
    if CPUS >= 4:
        return 2.5, True, f"{CPUS} cores"
    return 2.5, False, (
        f"only {CPUS} core(s): worker processes cannot outrun one GIL "
        "without cores to run on; gate skipped, numbers recorded"
    )


def _boot(cache_dir, workers=4, execution="thread", queue_depth=64,
          replica_id=None):
    service = AnalysisService(
        ServiceConfig(
            port=0,
            workers=workers,
            queue_depth=queue_depth,
            cache_dir=cache_dir,
            execution=execution,
            replica_id=replica_id,
            log_level="error",
        )
    )
    host, port = service.start()
    return service, ServiceClient(host, port)


def _fan_out(client, names):
    """Submit every workload from its own thread, wait for all, and
    return (seconds, per-name round-trip seconds, errors)."""
    barrier = threading.Barrier(len(names))
    laps = {}
    errors = []

    def _one(name):
        try:
            barrier.wait()
            t0 = time.perf_counter()
            status, report = None, None
            sub = client.submit(workload=name)
            status = client.wait(sub["job"], timeout=600, poll=0.005)
            report = client.report(sub["job"])
            laps[name] = time.perf_counter() - t0
            if status["state"] != "done" or not report:
                raise RuntimeError(f"{name}: bad outcome {status}")
        except Exception as exc:  # noqa: BLE001 - gate on the list
            errors.append(f"{name}: {exc!r}")

    threads = [
        threading.Thread(target=_one, args=(n,)) for n in names
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0, laps, errors


def _scale_submissions(names):
    """64 unique (workload, fuel) submissions cycling the Rodinia set.
    Fuel offsets make the content keys distinct without changing the
    work, so every client's job is a real cold execution and dedup
    rightly coalesces nothing."""
    subs = []
    for i in range(SCALE_CLIENTS):
        subs.append(
            {
                "workload": names[i % len(names)],
                "fuel": 50_000_000 + i // len(names),
            }
        )
    return subs


def _scale_phase(execution, names):
    """64 concurrent clients against one daemon; returns the phase
    record (wall seconds, throughput, metrics, errors)."""
    workers = max(2, min(CPUS, 8))
    service, client = _boot(
        None,
        workers=workers,
        execution=execution,
        queue_depth=SCALE_CLIENTS + 8,
    )
    bodies = _scale_submissions(names)
    barrier = threading.Barrier(len(bodies))
    errors = []

    def _one(body):
        try:
            barrier.wait()
            sub = client.submit(**body)
            status = client.wait(sub["job"], timeout=1200, poll=0.01)
            if status["state"] != "done":
                raise RuntimeError(f"bad outcome {status}")
            if not client.report(sub["job"]):
                raise RuntimeError("empty report")
        except Exception as exc:  # noqa: BLE001 - gate on the list
            errors.append(f"{body['workload']}: {exc!r}")

    threads = [
        threading.Thread(target=_one, args=(b,)) for b in bodies
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    samples = parse_samples(client.service_metrics())
    clean = service.shutdown(grace=60)
    return {
        "execution": execution,
        "workers": workers,
        "clients": len(bodies),
        "unique_submissions": len(
            {(b["workload"], b["fuel"]) for b in bodies}
        ),
        "wall_seconds": wall,
        "throughput_jobs_per_s": len(bodies) / wall,
        "executed": samples["repro_service_jobs_executed_total"],
        "deduped": samples["repro_service_jobs_deduped_total"],
        "failed": samples["repro_service_jobs_failed_total"],
        "restarts": samples["repro_service_worker_restarts_total"],
        "errors": errors,
        "clean_shutdown": clean,
    }


def _router_phase(names):
    """Two process-mode replicas behind the router vs one standalone
    daemon: every report must be byte-identical, executed exactly
    once across the ring."""
    shared = tempfile.mkdtemp(prefix="repro-bench-ring-")
    single_dir = tempfile.mkdtemp(prefix="repro-bench-single-")
    try:
        replicas = [
            _boot(shared, workers=2, execution="process",
                  replica_id=f"r{i}")
            for i in range(2)
        ]
        router = AnalysisRouter(
            RouterConfig(
                port=0,
                replicas=[
                    f"{svc.host}:{svc.port}" for svc, _ in replicas
                ],
                health_interval=0.25,
                log_level="error",
            )
        )
        rhost, rport = router.start()
        rclient = ServiceClient(rhost, rport)
        single, sclient = _boot(single_dir, workers=2)

        t0 = time.perf_counter()
        routed = {}
        errors = []
        for name in names:
            try:
                _, report = rclient.analyze_resilient(
                    workload=name, wait_timeout=600
                )
                routed[name] = report
            except Exception as exc:  # noqa: BLE001
                errors.append(f"{name}: {exc!r}")
        wall = time.perf_counter() - t0
        identical = all(
            routed.get(name) == sclient.analyze(
                workload=name, wait_timeout=600
            )[1]
            for name in names
        )
        executed = sum(
            parse_samples(c.service_metrics())[
                "repro_service_jobs_executed_total"
            ]
            for _, c in replicas
        )
        per_replica = [
            len(svc.registry.jobs()) for svc, _ in replicas
        ]
        router_doc = rclient.health(raise_for_status=True)
        router.shutdown()
        for svc, _ in replicas:
            svc.shutdown(grace=60)
        single.shutdown(grace=60)
        return {
            "wall_seconds": wall,
            "reports_identical": identical,
            "executed": executed,
            "per_replica_jobs": per_replica,
            "replica_states": [
                r["state"] for r in router_doc["replicas"]
            ],
            "errors": errors,
        }
    finally:
        shutil.rmtree(shared, ignore_errors=True)
        shutil.rmtree(single_dir, ignore_errors=True)


def run_service():
    names = list(rodinia_workloads())[:CONCURRENCY]
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    try:
        # -- cold phase: concurrent distinct submissions ------------------
        service, client = _boot(cache_dir)
        t_cold, cold_laps, cold_errors = _fan_out(client, names)
        cold_samples = parse_samples(client.service_metrics())
        clean_first = service.shutdown(grace=60)

        # -- warm phase: a *fresh* daemon over the populated cache --------
        warm_times = []
        warm_laps = {}
        warm_errors = []
        warm_samples = {}
        clean_restarts = []
        for _ in range(WARM_ROUNDS):
            service, client = _boot(cache_dir)
            t, laps, errs = _fan_out(client, names)
            if t == min([t] + warm_times):
                warm_laps = laps
            warm_times.append(t)
            warm_errors.extend(errs)
            warm_samples = parse_samples(client.service_metrics())
            clean_restarts.append(service.shutdown(grace=60))
        t_warm = min(warm_times)

        # -- dedup phase: identical concurrent submissions, no cache ------
        service, client = _boot(None, workers=4)
        barrier = threading.Barrier(CONCURRENCY)
        subs = [None] * CONCURRENCY
        dedup_errors = []

        def _same(i):
            try:
                barrier.wait()
                subs[i] = client.submit(workload="nn")
            except Exception as exc:  # noqa: BLE001
                dedup_errors.append(repr(exc))

        threads = [
            threading.Thread(target=_same, args=(i,))
            for i in range(CONCURRENCY)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        job_ids = {s["job"] for s in subs if s}
        for job_id in job_ids:
            client.wait(job_id, timeout=600)
        dedup_samples = parse_samples(client.service_metrics())
        service.shutdown(grace=60)

        # -- scale phase: 64 clients, thread pool vs process pool ---------
        scale = {
            mode: _scale_phase(mode, names)
            for mode in ("thread", "process")
        }

        # -- routed replicas vs a standalone daemon -----------------------
        routed = _router_phase(names)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "names": names,
        "t_cold": t_cold,
        "t_warm": t_warm,
        "warm_times": warm_times,
        "cold_laps": cold_laps,
        "warm_laps": warm_laps,
        "cold_errors": cold_errors,
        "warm_errors": warm_errors,
        "cold_samples": cold_samples,
        "warm_samples": warm_samples,
        "dedup_errors": dedup_errors,
        "dedup_job_ids": sorted(job_ids),
        "dedup_subs": [s for s in subs if s],
        "dedup_samples": dedup_samples,
        "clean_shutdowns": [clean_first] + clean_restarts,
        "scale": scale,
        "routed": routed,
    }


def test_service(benchmark):
    r = once(benchmark, run_service)
    speedup = r["t_cold"] / r["t_warm"] if r["t_warm"] else float("inf")
    gate, enforced, why = _scale_gate()
    thread_phase = r["scale"]["thread"]
    process_phase = r["scale"]["process"]
    scale_speedup = (
        process_phase["throughput_jobs_per_s"]
        / thread_phase["throughput_jobs_per_s"]
    )

    # gate: >= 8 concurrent submissions, zero errors, every shutdown clean
    assert len(r["names"]) >= CONCURRENCY
    assert not r["cold_errors"], r["cold_errors"]
    assert not r["warm_errors"], r["warm_errors"]
    assert all(r["clean_shutdowns"]), r["clean_shutdowns"]
    assert r["cold_samples"]["repro_service_jobs_failed_total"] == 0
    assert r["warm_samples"]["repro_service_jobs_failed_total"] == 0

    # gate: the warm daemon really served from the store
    assert (
        r["warm_samples"]["repro_service_jobs_warm_hits_total"]
        == len(r["names"])
    ), r["warm_samples"]

    # gate: identical concurrent submissions ran the pipeline once
    assert not r["dedup_errors"], r["dedup_errors"]
    assert len(r["dedup_subs"]) == CONCURRENCY
    assert len(r["dedup_job_ids"]) == 1, r["dedup_job_ids"]
    assert (
        sum(s["deduplicated"] for s in r["dedup_subs"])
        == CONCURRENCY - 1
    )
    assert (
        r["dedup_samples"]["repro_service_jobs_executed_total"] == 1
    ), r["dedup_samples"]

    # gate: 64-client scale phases -- zero errors, exactly-once per
    # unique submission, no worker crashes, clean drains
    for phase in (thread_phase, process_phase):
        assert phase["clients"] == SCALE_CLIENTS
        assert not phase["errors"], phase["errors"][:5]
        assert phase["failed"] == 0, phase
        assert phase["restarts"] == 0, phase
        assert phase["deduped"] == 0, phase
        assert phase["executed"] == phase["unique_submissions"], phase
        assert phase["clean_shutdown"], phase

    # gate: routed replicas -- byte identity and exactly-once
    assert not r["routed"]["errors"], r["routed"]["errors"]
    assert r["routed"]["reports_identical"] is True
    assert r["routed"]["executed"] == len(r["names"]), r["routed"]
    assert all(n > 0 for n in r["routed"]["per_replica_jobs"]), (
        "consistent hashing starved a replica: "
        f"{r['routed']['per_replica_jobs']}"
    )

    rows = []
    for name in r["names"]:
        c, w = r["cold_laps"][name], r["warm_laps"][name]
        rows.append([
            name,
            f"{1000 * c:.0f}ms",
            f"{1000 * w:.0f}ms",
            f"{c / w:.1f}x" if w else "-",
        ])
    rows.append([
        "TOTAL (wall)",
        f"{1000 * r['t_cold']:.0f}ms",
        f"{1000 * r['t_warm']:.0f}ms",
        f"{speedup:.1f}x",
    ])
    table = format_table(
        ["workload", "cold", "warm", "speedup"],
        rows,
        title=(
            f"repro.service: {CONCURRENCY} concurrent clients, "
            f"cold vs warm-restart daemon (best of {WARM_ROUNDS})"
        ),
    )
    scale_rows = [
        [
            phase["execution"],
            str(phase["workers"]),
            str(phase["clients"]),
            f"{phase['wall_seconds']:.2f}s",
            f"{phase['throughput_jobs_per_s']:.2f}/s",
        ]
        for phase in (thread_phase, process_phase)
    ]
    scale_rows.append(
        ["process/thread", "-", "-", "-", f"{scale_speedup:.2f}x"]
    )
    table += "\n\n" + format_table(
        ["execution", "workers", "clients", "wall", "throughput"],
        scale_rows,
        title=(
            f"repro.service scale-out ({CPUS} cores, gate "
            f"{gate:.1f}x {'enforced' if enforced else 'skipped'}: {why})"
        ),
    )
    emit("service.txt", table)

    with open(results_path("BENCH_service.json"), "w") as fh:
        json.dump(
            {
                "concurrency": CONCURRENCY,
                "warm_rounds": WARM_ROUNDS,
                "gate_warm": GATE_WARM,
                "t_cold": r["t_cold"],
                "t_warm": r["t_warm"],
                "warm_times": r["warm_times"],
                "speedup": speedup,
                "cold_laps": r["cold_laps"],
                "warm_laps": r["warm_laps"],
                "dedup_executed": r["dedup_samples"][
                    "repro_service_jobs_executed_total"
                ],
                "dedup_submissions": len(r["dedup_subs"]),
                "cpus": CPUS,
                "scale_clients": SCALE_CLIENTS,
                "scale_gate": gate,
                "scale_gate_enforced": enforced,
                "scale_gate_note": why,
                "scale_speedup": scale_speedup,
                "scale_thread": thread_phase,
                "scale_process": process_phase,
                "routed": r["routed"],
            },
            fh,
            indent=2,
            sort_keys=True,
        )

    assert speedup >= GATE_WARM, (
        f"warm daemon only {speedup:.1f}x faster than cold "
        f"(gate: {GATE_WARM:.0f}x)"
    )
    # the scale-out claim only where the hardware can express it
    if enforced:
        assert scale_speedup >= gate, (
            f"process pool only {scale_speedup:.2f}x thread-pool "
            f"throughput at {SCALE_CLIENTS} clients "
            f"(gate {gate:.1f}x, {why})"
        )
