"""Analysis-service benchmark: concurrency, dedup, warm restarts.

Boots real daemons on ephemeral loopback ports and drives them with
the stdlib client, gating the service PR's headline claims:

* **concurrency** -- at least 8 simultaneous submissions of distinct
  workloads complete with zero errors;
* **dedup** -- N identical concurrent submissions coalesce onto one
  job and execute the pipeline exactly once;
* **warm restart** -- a fresh daemon pointed at the cache directory a
  previous daemon populated serves the same requests at least **10x**
  faster end-to-end (HTTP round trips, queueing, polling, and artifact
  decode all included in the warm time).

Writes ``BENCH_service.json``.
"""

import json
import shutil
import tempfile
import threading
import time

from _harness import emit, format_table, once, results_path
from repro.service import (
    AnalysisService,
    ServiceClient,
    ServiceConfig,
    parse_samples,
)
from repro.workloads import rodinia_workloads

#: how many simultaneous clients the concurrency/dedup phases use
CONCURRENCY = 8

#: warm repetitions (best-of; noise is additive)
WARM_ROUNDS = 3

#: required cold/warm end-to-end speedup through the service
GATE_WARM = 10.0


def _boot(cache_dir, workers=4):
    service = AnalysisService(
        ServiceConfig(
            port=0,
            workers=workers,
            queue_depth=64,
            cache_dir=cache_dir,
            log_level="error",
        )
    )
    host, port = service.start()
    return service, ServiceClient(host, port)


def _fan_out(client, names):
    """Submit every workload from its own thread, wait for all, and
    return (seconds, per-name round-trip seconds, errors)."""
    barrier = threading.Barrier(len(names))
    laps = {}
    errors = []

    def _one(name):
        try:
            barrier.wait()
            t0 = time.perf_counter()
            status, report = None, None
            sub = client.submit(workload=name)
            status = client.wait(sub["job"], timeout=600, poll=0.005)
            report = client.report(sub["job"])
            laps[name] = time.perf_counter() - t0
            if status["state"] != "done" or not report:
                raise RuntimeError(f"{name}: bad outcome {status}")
        except Exception as exc:  # noqa: BLE001 - gate on the list
            errors.append(f"{name}: {exc!r}")

    threads = [
        threading.Thread(target=_one, args=(n,)) for n in names
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0, laps, errors


def run_service():
    names = list(rodinia_workloads())[:CONCURRENCY]
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    try:
        # -- cold phase: concurrent distinct submissions ------------------
        service, client = _boot(cache_dir)
        t_cold, cold_laps, cold_errors = _fan_out(client, names)
        cold_samples = parse_samples(client.service_metrics())
        clean_first = service.shutdown(grace=60)

        # -- warm phase: a *fresh* daemon over the populated cache --------
        warm_times = []
        warm_laps = {}
        warm_errors = []
        warm_samples = {}
        clean_restarts = []
        for _ in range(WARM_ROUNDS):
            service, client = _boot(cache_dir)
            t, laps, errs = _fan_out(client, names)
            if t == min([t] + warm_times):
                warm_laps = laps
            warm_times.append(t)
            warm_errors.extend(errs)
            warm_samples = parse_samples(client.service_metrics())
            clean_restarts.append(service.shutdown(grace=60))
        t_warm = min(warm_times)

        # -- dedup phase: identical concurrent submissions, no cache ------
        service, client = _boot(None, workers=4)
        barrier = threading.Barrier(CONCURRENCY)
        subs = [None] * CONCURRENCY
        dedup_errors = []

        def _same(i):
            try:
                barrier.wait()
                subs[i] = client.submit(workload="nn")
            except Exception as exc:  # noqa: BLE001
                dedup_errors.append(repr(exc))

        threads = [
            threading.Thread(target=_same, args=(i,))
            for i in range(CONCURRENCY)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        job_ids = {s["job"] for s in subs if s}
        for job_id in job_ids:
            client.wait(job_id, timeout=600)
        dedup_samples = parse_samples(client.service_metrics())
        service.shutdown(grace=60)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "names": names,
        "t_cold": t_cold,
        "t_warm": t_warm,
        "warm_times": warm_times,
        "cold_laps": cold_laps,
        "warm_laps": warm_laps,
        "cold_errors": cold_errors,
        "warm_errors": warm_errors,
        "cold_samples": cold_samples,
        "warm_samples": warm_samples,
        "dedup_errors": dedup_errors,
        "dedup_job_ids": sorted(job_ids),
        "dedup_subs": [s for s in subs if s],
        "dedup_samples": dedup_samples,
        "clean_shutdowns": [clean_first] + clean_restarts,
    }


def test_service(benchmark):
    r = once(benchmark, run_service)
    speedup = r["t_cold"] / r["t_warm"] if r["t_warm"] else float("inf")

    # gate: >= 8 concurrent submissions, zero errors, every shutdown clean
    assert len(r["names"]) >= CONCURRENCY
    assert not r["cold_errors"], r["cold_errors"]
    assert not r["warm_errors"], r["warm_errors"]
    assert all(r["clean_shutdowns"]), r["clean_shutdowns"]
    assert r["cold_samples"]["repro_service_jobs_failed_total"] == 0
    assert r["warm_samples"]["repro_service_jobs_failed_total"] == 0

    # gate: the warm daemon really served from the store
    assert (
        r["warm_samples"]["repro_service_jobs_warm_hits_total"]
        == len(r["names"])
    ), r["warm_samples"]

    # gate: identical concurrent submissions ran the pipeline once
    assert not r["dedup_errors"], r["dedup_errors"]
    assert len(r["dedup_subs"]) == CONCURRENCY
    assert len(r["dedup_job_ids"]) == 1, r["dedup_job_ids"]
    assert (
        sum(s["deduplicated"] for s in r["dedup_subs"])
        == CONCURRENCY - 1
    )
    assert (
        r["dedup_samples"]["repro_service_jobs_executed_total"] == 1
    ), r["dedup_samples"]

    rows = []
    for name in r["names"]:
        c, w = r["cold_laps"][name], r["warm_laps"][name]
        rows.append([
            name,
            f"{1000 * c:.0f}ms",
            f"{1000 * w:.0f}ms",
            f"{c / w:.1f}x" if w else "-",
        ])
    rows.append([
        "TOTAL (wall)",
        f"{1000 * r['t_cold']:.0f}ms",
        f"{1000 * r['t_warm']:.0f}ms",
        f"{speedup:.1f}x",
    ])
    table = format_table(
        ["workload", "cold", "warm", "speedup"],
        rows,
        title=(
            f"repro.service: {CONCURRENCY} concurrent clients, "
            f"cold vs warm-restart daemon (best of {WARM_ROUNDS})"
        ),
    )
    emit("service.txt", table)

    with open(results_path("BENCH_service.json"), "w") as fh:
        json.dump(
            {
                "concurrency": CONCURRENCY,
                "warm_rounds": WARM_ROUNDS,
                "gate_warm": GATE_WARM,
                "t_cold": r["t_cold"],
                "t_warm": r["t_warm"],
                "warm_times": r["warm_times"],
                "speedup": speedup,
                "cold_laps": r["cold_laps"],
                "warm_laps": r["warm_laps"],
                "dedup_executed": r["dedup_samples"][
                    "repro_service_jobs_executed_total"
                ],
                "dedup_submissions": len(r["dedup_subs"]),
            },
            fh,
            indent=2,
            sort_keys=True,
        )

    assert speedup >= GATE_WARM, (
        f"warm daemon only {speedup:.1f}x faster than cold "
        f"(gate: {GATE_WARM:.0f}x)"
    )
