"""Table 4 / Case study II: GemsFDTD tiling.

Regenerates the feedback for the ``updateH_homo`` / ``updateE_homo``
3-D stencils: all loops parallel and tilable (the paper tiles all
dimensions with size 32 and parallelizes the outer loop, measuring
2.6x / 1.9x).  The estimated speedup replays the tiled iteration
order through the cache model.
"""


from _harness import emit, format_table, once
from repro.machine import CostConfig, estimate_speedup
from repro.pipeline import analyze
from repro.workloads.gemsfdtd import build_gemsfdtd

COST = CostConfig(simd_width=4, threads=4, thread_efficiency=0.35)


def run_case_study():
    spec = build_gemsfdtd(n=10, timesteps=1)
    result = analyze(spec)
    out = []
    for func, line in (("updateH_homo", 106), ("updateE_homo", 240)):
        leaf = max(
            (
                n
                for n in result.forest.walk()
                if n.is_innermost()
                and any(s.stmt.func == func for s in n.stmts)
            ),
            key=lambda n: -abs(n.ops_total),
        )
        chain_par = all(
            result.forest.node_at(leaf.path[: k + 1]).parallel
            for k in range(1, leaf.depth)
        )
        band = leaf.depth - (leaf.band_start or 0)
        mem_stmts = [
            s for s in leaf.stmts
            if s.stmt.instr.is_mem and s.label_fn is not None and s.exact
        ]
        domain = max(
            (s for s in leaf.stmts if s.exact and s.depth == leaf.depth),
            key=lambda s: s.count,
        ).domain.pieces[0]
        # drop the time dimension for the per-kernel replay (the paper
        # tiles the spatial loops of each kernel)
        spatial = domain.project_onto(list(range(1, domain.dim)))
        spatial_fns = mem_stmts  # label fns still take full coords; fix t=0
        fixed = [s for s in mem_stmts]
        dom0 = domain.fix(0, next(iter(domain.points()))[0])
        ops_per_point = sum(s.count for s in leaf.stmts) / max(dom0.card(), 1)

        class _Proxy:
            def __init__(self, fs):
                self.stmt = fs.stmt
                from repro.poly import AffineExpr, AffineFunction

                e = fs.label_fn.exprs[0]
                t0 = next(iter(domain.points()))[0]
                self.label_fn = AffineFunction([
                    AffineExpr(e.coeffs[1:], e.const + e.coeffs[0] * t0, e.den)
                ])

        proxies = [_Proxy(s) for s in mem_stmts]
        before = {"order": None, "simd": False, "parallel": False}
        after = {"tile": 4, "simd": True, "parallel": True}
        speedup, c0, c1 = estimate_speedup(
            proxies, dom0, ops_per_point, before, after, COST
        )
        out.append((func, line, chain_par, band, speedup))
    return result, out


def test_table4_gemsfdtd_case_study(benchmark):
    result, case = once(benchmark, run_case_study)
    rows = []
    for func, line, chain_par, band, speedup in case:
        rows.append([
            f"update.F90:{line}",
            f"update.F90:{{{line},{line+1},{line+2}}}",
            "yes" if chain_par else "no",
            f"{band}D",
            f"{speedup:.1f}x",
        ])
    table = format_table(
        ["Fat region", "tiling", "fully parallel", "tilable band",
         "est. speedup"],
        rows,
        title="Table 4: GemsFDTD case study (paper: 2.6x / 1.9x measured)",
    )
    emit("table4_gemsfdtd.txt", table)

    for func, line, chain_par, band, speedup in case:
        assert chain_par            # all spatial loops parallel
        assert band >= 3            # 3-D tilable band
        assert speedup > 1.2        # tiling + threads win
