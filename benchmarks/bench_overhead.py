"""Experiment I: cost of the dynamic analysis.

The paper reports 3h06' of CPU time for the first three POLY-PROF
stages over the full Rodinia suite (shadow memory is not free).  We
measure the same shape at our scale: native execution vs
Instrumentation I vs Instrumentation II + folding, per benchmark and
total, and report the slowdown factors.
"""

import time


from _harness import emit, format_table, once
from repro.folding import FoldingSink
from repro.isa import run_program
from repro.pipeline import profile_control, profile_ddg
from repro.workloads import rodinia_workloads


def run_overhead():
    rows = []
    totals = [0.0, 0.0, 0.0]
    for name, factory in rodinia_workloads().items():
        spec = factory()
        args, mem = spec.make_state()
        t0 = time.perf_counter()
        run_program(spec.program, args=args, memory=mem)
        native = time.perf_counter() - t0

        control = profile_control(spec)
        stage1 = control.wall_seconds

        sink = FoldingSink()
        t0 = time.perf_counter()
        profile_ddg(spec, control, sink=sink)
        sink.finalize()
        stage2 = time.perf_counter() - t0

        totals[0] += native
        totals[1] += stage1
        totals[2] += stage2
        rows.append([
            name,
            f"{1000 * native:.0f}ms",
            f"{1000 * stage1:.0f}ms",
            f"{1000 * stage2:.0f}ms",
            f"{stage1 / native:.1f}x" if native > 0 else "-",
            f"{stage2 / native:.1f}x" if native > 0 else "-",
        ])
    rows.append([
        "TOTAL",
        f"{1000 * totals[0]:.0f}ms",
        f"{1000 * totals[1]:.0f}ms",
        f"{1000 * totals[2]:.0f}ms",
        f"{totals[1] / totals[0]:.1f}x",
        f"{totals[2] / totals[0]:.1f}x",
    ])
    return rows, totals


def test_experiment1_analysis_overhead(benchmark):
    rows, totals = once(benchmark, run_overhead)
    table = format_table(
        ["benchmark", "native", "instr. I", "instr. II + fold",
         "I slowdown", "II slowdown"],
        rows,
        title=(
            "Experiment I: analysis cost over the suite "
            "(paper: 3h06' CPU total on their testbed)"
        ),
    )
    emit("experiment1_overhead.txt", table)

    # the paper's qualitative point: dependence profiling with shadow
    # memory costs a significant multiple of native execution
    assert totals[2] > totals[0]
    assert totals[1] > 0
