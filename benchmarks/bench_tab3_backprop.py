"""Table 3 / Case study I: backprop interchange + SIMDization.

Regenerates the per-nest feedback of Table 3 for the two fat regions
(``bpnn_layerforward``'s hot call and ``bpnn_adjust_weights``'s hot
call): per-dimension (parallel, permutable, %stride-0/1) tuples, the
suggested interchange+SIMD transformation, and an estimated speedup
from replaying the transformed iteration order through the cache cost
model (the paper measured 5.3x / 7.8x on a Xeon; our substitute
reports cost-model ratios -- shape, not absolute numbers).
"""


from _harness import emit, format_table, once
from repro.feedback import nest_report, stride_scores
from repro.machine import CostConfig, estimate_speedup
from repro.pipeline import analyze
from repro.schedule import plan_nest
from repro.workloads.backprop import build_backprop

#: calibrated to an AVX-era memory-bound kernel: 4-wide SIMD, modest
#: thread scaling (the paper's kernels saturate memory bandwidth)
COST = CostConfig(simd_width=4, threads=4, thread_efficiency=0.5)


def hot_leaves(result, func):
    leaves = [
        n
        for n in result.forest.walk()
        if n.is_innermost()
        and n.depth >= 2
        and any(s.stmt.func == func for s in n.stmts)
    ]
    return sorted(leaves, key=lambda n: -n.ops_total)


def run_case_study():
    spec = build_backprop()
    result = analyze(spec)
    out = []
    for func, label in (
        ("bpnn_layerforward", "backprop_kernel.c:52 (L_layer)"),
        ("bpnn_adjust_weights", "backprop_kernel.c:57 (L_adjust)"),
    ):
        leaf = hot_leaves(result, func)[0]
        scores = stride_scores(leaf)
        plan = plan_nest(result.forest, leaf, scores)
        report = nest_report(result.forest, leaf, plan)
        mem_stmts = [
            s for s in leaf.stmts
            if s.stmt.instr.is_mem and s.label_fn is not None and s.exact
        ]
        domain = max(
            (s for s in leaf.stmts if s.exact and s.depth == leaf.depth),
            key=lambda s: s.count,
        ).domain.pieces[0]
        ops_per_point = sum(s.count for s in leaf.stmts) / max(
            domain.card(), 1
        )
        before = {"order": None, "simd": False, "parallel": False}
        after = {
            "order": plan.permutation,
            "simd": plan.simd,
            "parallel": bool(plan.parallel_dims),
        }
        speedup, c0, c1 = estimate_speedup(
            mem_stmts, domain, ops_per_point, before, after, COST
        )
        out.append((label, leaf, report, plan, speedup))
    return result, out


def test_table3_backprop_case_study(benchmark):
    result, case = once(benchmark, run_case_study)
    total = result.forest.total_ops()
    rows = []
    for label, leaf, report, plan, speedup in case:
        pct = 100.0 * leaf.ops_total / total
        rows.append([
            label,
            f"{pct:.0f}%",
            f"({', '.join(str(d.src_line) for d in report.dims)})",
            "(" + ", ".join(
                "yes" if plan.interchange or i == len(report.dims) - 1
                else "no" for i, _ in enumerate(report.dims)
            ) + ")" if plan.interchange else "(no interchange)",
            "(" + ", ".join("yes" if d.parallel else "no" for d in report.dims) + ")",
            "(" + ", ".join("yes" if d.permutable else "no" for d in report.dims) + ")",
            "(" + ", ".join(f"{d.pct_stride01:.0f}%" for d in report.dims) + ")",
            f"{speedup:.1f}x",
        ])
    table = format_table(
        ["Fat region", "%ops", "lines", "interchange+SIMD",
         "parallel", "permutable", "%stride 0/1", "est. speedup"],
        rows,
        title="Table 3: backprop case study (paper: 5.3x / 7.8x measured)",
    )
    emit("table3_backprop.txt", table)

    # shape assertions (the paper's qualitative findings)
    for label, leaf, report, plan, speedup in case:
        assert report.dims[0].parallel          # outer loop parallel
        assert all(d.permutable for d in report.dims)  # fully permutable
        assert plan.simd                        # SIMDization suggested
        assert speedup > 1.5                    # the transformation wins
    # adjust_weights gains at least as much as layerforward (7.8 vs 5.3)
    assert case[1][4] >= 0.8 * case[0][4]
