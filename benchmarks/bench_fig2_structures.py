"""Fig. 2: the example CFG with its loop-nesting-tree, and the example
call graph with its recursive-component-set.

Rebuilds both structures from the paper's graphs and prints them in
the figure's terms (headers, back-edges, entries, components).
"""


from _harness import emit, format_table, once
from repro.cfg import build_loop_forest, build_recursive_component_set


def run_structures():
    forest = build_loop_forest(
        "f",
        {"A", "B", "C", "D", "E"},
        {("A", "B"), ("B", "C"), ("B", "D"), ("C", "D"), ("D", "C"),
         ("D", "B"), ("B", "E")},
        "A",
    )
    rcs = build_recursive_component_set(
        {"M", "A", "B", "C", "E"},
        {("M", "A"), ("A", "B"), ("B", "C"), ("C", "B"), ("C", "C"),
         ("B", "E")},
        "M",
    )
    return forest, rcs


def test_fig2_structures(benchmark):
    forest, rcs = once(benchmark, run_structures)
    rows = [
        [lp.id, lp.header, sorted(lp.region), sorted(lp.back_edges),
         sorted(lp.entries), lp.depth]
        for lp in forest.all_loops
    ]
    t1 = format_table(
        ["loop", "header", "region", "back-edges", "entries", "depth"],
        rows,
        title="Fig. 2b: loop-nesting-tree of the example CFG",
    )
    rows2 = [
        [c.id, sorted(c.functions), sorted(c.entries), sorted(c.headers)]
        for c in rcs.components
    ]
    t2 = format_table(
        ["component", "functions", "entries", "headers"],
        rows2,
        title="Fig. 2d: recursive-component-set of the example CG",
    )
    emit("fig2_structures.txt", t1 + "\n\n" + t2)

    # the figure's facts
    l1, l2 = forest.all_loops[0], forest.all_loops[0].children[0]
    assert l1.header == "B" and l1.back_edges == {("D", "B")}
    assert l2.header == "C" and l2.entries == {"C", "D"}
    (c,) = rcs.components
    assert c.entries == {"B"} and c.headers == {"B", "C"}
