"""The supplementary feedback document (paper section 6 / 7).

The paper notes: "Given the extensive textual length of the feedback
we provide, an example is shown only in the supplementary document."
This bench regenerates that artifact for backprop: the complete
feedback package a user receives -- hotness-ordered nest reports with
per-dimension properties, the full suggested transformation sequences
with polyhedral legality verdicts, the simplified post-transformation
AST, the compact-DDG inventory with compression statistics, and the
collapsed-stack flame-graph data.
"""


from _harness import emit, once
from repro.feedback import render_report
from repro.folding import compression_stats
from repro.pipeline import analyze
from repro.schedule import verify_plan
from repro.workloads.backprop import build_backprop


def run_supplementary():
    result = analyze(build_backprop())
    parts = []
    cs = compression_stats(result.folded)
    parts.append("== compact polyhedral DDG ==")
    parts.append(cs.summary())
    parts.append("")
    parts.append(render_report(result.forest, result.plans,
                               title="full feedback: backprop"))
    parts.append("")
    parts.append("== plan verification (polyhedral legality) ==")
    for plan in result.plans:
        if not plan.steps:
            continue
        res = verify_plan(result.forest, plan)
        nest = " / ".join(p[-1] for p in plan.leaf.path)
        parts.append(
            f"  {nest}: {'LEGAL' if res.legal else 'VIOLATED'} "
            f"({res.checked} checked, {res.skipped} conservative)"
        )
    parts.append("")
    parts.append("== collapsed flame-graph stacks (flamegraph.pl input) ==")
    parts.append(result.schedule_tree.to_collapsed())
    return result, "\n".join(parts)


def test_supplementary_document(benchmark):
    result, doc = once(benchmark, run_supplementary)
    emit("supplementary_backprop.txt", doc)

    assert "suggested transformation" in doc
    assert "LEGAL" in doc and "VIOLATED" not in doc
    assert "bpnn_layerforward" in doc
    # collapsed stacks account for every dynamic instruction
    total = sum(
        int(line.rsplit(" ", 1)[1])
        for line in result.schedule_tree.to_collapsed().splitlines()
    )
    assert total == result.ddg_profile.builder.instr_count
