"""Incremental re-analysis benchmark: edit-to-report latency vs cold.

For each workload of the suite a baseline analysis populates an
artifact store (``man-`` manifest + per-function ``rgn-`` regions),
then two classes of program edit are re-analyzed against it:

* **renumber** -- a uid-renumbered twin
  (:func:`repro.incr.renumbered_spec`): the recompiled-after-a-
  formatting-only-change scenario.  Every function's canonical
  fingerprint is unchanged, the differ classifies the whole program as
  unchanged, and the pipeline serves both stages from the baseline
  without executing anything (``identical`` mode).  This class carries
  the gate: the suite-total speedup over a cold analysis must be at
  least ``GATE``x (override: ``REPRO_INCR_GATE``; CI uses a relaxed
  value -- shared runners throttle).

* **body** -- a one-function sink edit
  (:func:`repro.incr.edited_spec`): the honest small-edit scenario.
  It is reported but **not** gated: dependence-frontier slicing saves
  *instrumentation* work, not *execution* -- both stages still run the
  whole program, and on execution-bound workloads whose hot kernels
  sit on the frontier (may-alias over shared arrays) the stitch
  overhead makes the incremental run roughly break even with cold
  (~0.8-1.1x here).  The numbers are recorded so nobody has to guess.

The cold side is measured against a *fresh* store so both sides pay
the same artifact write-through.  Incremental cells are best-of-
``INC_ROUNDS`` with a distinct edit per round (a repeated digest would
short-circuit into a plain warm hit); cold cells are best-of-
``COLD_ROUNDS``.

Byte identity is asserted for **every** cell, both classes: the
rendered report and metrics JSON of the incremental run must equal a
cold analysis of the identical edited program.  Writes
``BENCH_incr.json`` next to the text table.
"""

import json
import os
import shutil
import tempfile
import time

from _harness import emit, format_table, once, results_path
from repro.feedback.jsonout import (
    metrics_document,
    render_json,
    report_document,
)
from repro.incr import edited_spec, renumbered_spec
from repro.isa import fingerprint_program
from repro.pipeline import analyze
from repro.store import ArtifactStore
from repro.workloads import all_workloads

#: required suite-total renumber-edit speedup (cold / incremental)
GATE = 5.0

#: best-of-N repetitions per incremental cell (distinct edit each)
INC_ROUNDS = 3

#: best-of-N repetitions per cold cell
COLD_ROUNDS = 2

#: polybench stencils are scaled past their unit-test size: incremental
#: re-analysis targets long runs, where analysis cost is execution-bound
STEPS = 16


def _suite_specs():
    """name -> zero-arg spec factory, multi-function Rodinia plus two
    scaled stencils (execution-bound single-function cases)."""
    w = all_workloads()
    return {
        "jacobi2d_s16": lambda: w["pb_jacobi2d"](steps=STEPS),
        "seidel2d_s16": lambda: w["pb_seidel2d"](steps=STEPS),
        "heartwall": w["heartwall"],
        "gemsfdtd": w["gemsfdtd"],
        "lavaMD": w["lavaMD"],
        "srad_v1": w["srad_v1"],
        "kmeans": w["kmeans"],
        "backprop": w["backprop"],
    }


def _gate():
    """(threshold, source) -- the env var overrides the default."""
    env = os.environ.get("REPRO_INCR_GATE")
    if env:
        return float(env), f"REPRO_INCR_GATE={env}"
    return GATE, "default"


def _docs(result):
    return (
        render_json(report_document(result)),
        render_json(metrics_document(result)),
    )


def _timed(spec, store, baseline=None):
    t0 = time.perf_counter()
    result = analyze(spec, store=store, baseline=baseline)
    return time.perf_counter() - t0, result


def _cold_best(make_spec):
    """Best-of-N cold runs, each against a fresh store (paying the
    same manifest/region write-through as the incremental side).
    Returns (seconds, docs-of-first-run)."""
    best, docs = float("inf"), None
    for _ in range(COLD_ROUNDS):
        cold_dir = tempfile.mkdtemp(prefix="repro-bench-incr-cold-")
        try:
            dt, result = _timed(make_spec(), ArtifactStore(cold_dir))
        finally:
            shutil.rmtree(cold_dir, ignore_errors=True)
        best = min(best, dt)
        if docs is None:
            docs = _docs(result)
    return best, docs


def _edit_cell(store, baseline, make_edit, cold_docs):
    """Best-of-N incremental runs of ``make_edit(round)`` (each round a
    distinct digest, so none short-circuits into a warm hit) against a
    cold analysis of the same round-0 edit."""
    best, info, identical = float("inf"), None, False
    for r in range(INC_ROUNDS):
        dt, result = _timed(make_edit(r), store, baseline=baseline)
        best = min(best, dt)
        if r == 0:
            info = result.incremental
            identical = _docs(result) == cold_docs
    return {
        "inc_seconds": best,
        "mode": info.mode,
        "reason": info.reason,
        "regions_reused": info.regions_reused,
        "byte_identical": identical,
    }


def run_incr():
    cases = {}
    for name, factory in _suite_specs().items():
        base_dir = tempfile.mkdtemp(prefix="repro-bench-incr-")
        try:
            spec = factory()
            baseline = fingerprint_program(spec.program)
            store_base = ArtifactStore(base_dir)
            analyze(spec, store=store_base)

            program = spec.program
            funcs = sorted(program.functions)

            # renumber class: round r shifts every uid by 1000*(r+1)
            t_cold, cold_docs = _cold_best(
                lambda: renumbered_spec(factory(), offset=1000)
            )
            renum = _edit_cell(
                store_base,
                baseline,
                lambda r: renumbered_spec(factory(), offset=1000 * (r + 1)),
                cold_docs,
            )
            renum["cold_seconds"] = t_cold

            # body class: round r appends a distinct dead const to the
            # first non-entry function (multi-function workloads only)
            body = None
            targets = [f for f in funcs if f != program.main]
            if targets:
                func = targets[0]
                t_cold, cold_docs = _cold_best(
                    lambda: edited_spec(factory(), func, value=11)
                )
                body = _edit_cell(
                    store_base,
                    baseline,
                    lambda r: edited_spec(factory(), func, value=11 + r),
                    cold_docs,
                )
                body["cold_seconds"] = t_cold
                body["edited_func"] = func
        finally:
            shutil.rmtree(base_dir, ignore_errors=True)
        cases[name] = {
            "functions": len(funcs),
            "renumber": renum,
            "body": body,
        }
    return cases


def _speedup(cell):
    return cell["cold_seconds"] / cell["inc_seconds"]


def test_incremental_speed(benchmark):
    cases = once(benchmark, run_incr)
    threshold, source = _gate()

    broken = [
        (name, cls)
        for name, c in cases.items()
        for cls in ("renumber", "body")
        if c[cls] is not None and not c[cls]["byte_identical"]
    ]
    assert not broken, f"incremental output differs from cold: {broken}"

    not_identical = [
        name
        for name, c in cases.items()
        if c["renumber"]["mode"] != "identical"
    ]
    assert not_identical == [], (
        "renumber edits must take the no-execution path, got: "
        + ", ".join(
            f"{n}={cases[n]['renumber']['mode']}" for n in not_identical
        )
    )

    rows = []
    for name, c in cases.items():
        r, b = c["renumber"], c["body"]
        rows.append([
            name,
            c["functions"],
            f"{1000 * r['cold_seconds']:.0f}ms",
            f"{1000 * r['inc_seconds']:.0f}ms",
            f"{_speedup(r):.1f}x",
            (
                f"{1000 * b['inc_seconds']:.0f}ms {_speedup(b):.2f}x "
                f"({b['mode']})"
                if b
                else "-"
            ),
        ])
    t_cold = sum(c["renumber"]["cold_seconds"] for c in cases.values())
    t_inc = sum(c["renumber"]["inc_seconds"] for c in cases.values())
    suite_speedup = t_cold / t_inc
    rows.append([
        "TOTAL", "",
        f"{1000 * t_cold:.0f}ms",
        f"{1000 * t_inc:.0f}ms",
        f"{suite_speedup:.1f}x",
        "",
    ])
    table = format_table(
        ["workload", "funcs", "cold", "renumber", "speedup", "body edit"],
        rows,
        title=(
            "Incremental re-analysis vs cold (renumber = formatting-"
            f"only recompile, best of {INC_ROUNDS}; gate {threshold}x "
            f"[{source}]; body edits shown honestly, not gated)"
        ),
    )
    emit("incr_speed.txt", table)

    with open(results_path("BENCH_incr.json"), "w") as fh:
        json.dump(
            {
                "gate": threshold,
                "gate_source": source,
                "inc_rounds": INC_ROUNDS,
                "cold_rounds": COLD_ROUNDS,
                "suite_cold_seconds": t_cold,
                "suite_inc_seconds": t_inc,
                "suite_speedup": suite_speedup,
                "cases": cases,
            },
            fh,
            indent=2,
            sort_keys=True,
        )

    assert suite_speedup >= threshold, (
        f"renumber-edit suite only {suite_speedup:.1f}x faster than "
        f"cold (gate: {threshold}x)"
    )
