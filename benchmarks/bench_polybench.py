"""PolyBench sweep (paper section 5's affine reference point).

Runs the pipeline over the PolyBench-style kernels and prints a
Table 5-shaped summary: these hot regions fold fully affine (the
paper's framing: "even in programs where the hot region is affine such
as in PolyBench"), with the expected parallel/tilable structure, and
every suggested plan passes polyhedral verification.
"""


from _harness import emit, format_table, once
from repro.feedback import compute_region_metrics
from repro.pipeline import analyze
from repro.schedule import verify_plan
from repro.workloads.polybench import POLYBENCH


def run_suite():
    rows = []
    all_legal = True
    for name, factory in sorted(POLYBENCH.items()):
        spec = factory()
        result = analyze(spec)
        m = compute_region_metrics(
            result.folded,
            result.forest,
            result.control.callgraph,
            region_funcs=spec.region_funcs,
            label=spec.region_label,
        )
        legal = all(
            verify_plan(result.forest, p).legal
            for p in result.plans
            if p.steps
        )
        all_legal &= legal
        r = m.row()
        rows.append([
            name, r["#ops"], r["%Aff"], r["%||ops"], r["%simdops"],
            r["%reuse"], r["ld-bin"], r["TileD"],
            "yes" if legal else "NO",
        ])
    return rows, all_legal


def test_polybench_suite(benchmark):
    rows, all_legal = once(benchmark, run_suite)
    table = format_table(
        ["kernel", "#ops", "%Aff", "%||ops", "%simd", "%reuse",
         "ld-bin", "TileD", "plans verified"],
        rows,
        title="PolyBench-style kernels (fully affine reference suite)",
    )
    emit("polybench.txt", table)

    assert all_legal
    by_name = {r[0]: r for r in rows}
    for name, row in by_name.items():
        assert row[2] >= 99, name          # %Aff
    assert by_name["gemm"][7] == "3D"      # the canonical 3-D band
    assert by_name["jacobi2d"][7] == "2D"  # spatial band only
