"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index): it recomputes the artifact
from scratch through the full pipeline, prints it in the paper's
layout, and writes a copy under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def results_path(name: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return os.path.join(RESULTS_DIR, name)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def emit(name: str, text: str) -> None:
    """Print the regenerated artifact and persist it."""
    print()
    print(text)
    with open(results_path(name), "w") as fh:
        fh.write(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The pipelines here are end-to-end reproductions (seconds each);
    statistical repetition is pointless, the wall time is the datum.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
