"""Fig. 7: the annotated flame graph for backprop.

Profiles the full backprop training step and renders the dynamic
schedule tree as an SVG flame graph: hot regions wide, loop/call nodes
tinted, non-affine regions grayed, and the suggested transformations
attached as annotations -- the paper's main visual feedback artifact.
The SVG is written to ``benchmarks/results/fig7_backprop.svg``.
"""


from _harness import emit, once, results_path
from repro.feedback import render_flamegraph_svg
from repro.pipeline import analyze
from repro.workloads.backprop import build_backprop


def run_flamegraph():
    result = analyze(build_backprop())
    # non-affine / blacklisted regions are grayed (the paper grays the
    # initialization and libc calls; our analogue: non-affine leaves)
    bad_leaves = set()
    bad_deps = set()
    for dep in result.folded.transform_deps():
        if dep.relation is None and dep.key.kind in ("flow", "reg"):
            bad_deps.add(dep.key.dst)
    for key, fs in result.folded.statements.items():
        if not result.folded.stmt_is_affine(key, bad_deps):
            ctx = fs.stmt.context
            bad_leaves.add(tuple(ctx[j] for j in range(len(ctx) - 1)))

    annotations = {}
    for plan in result.plans:
        if not plan.steps:
            continue
        label = "; ".join(f"{s.kind}" for s in plan.steps)
        annotations[plan.leaf.loop_id] = label

    def annotate(path, node):
        return annotations.get(path[-1], "")

    def grayed(path, node):
        return any(path[-1] == leaf[-1][-1] for leaf in bad_leaves)

    svg = render_flamegraph_svg(
        result.schedule_tree,
        annotate=annotate,
        grayed=grayed,
        title="poly-prof annotated flame graph: backprop",
    )
    return result, svg


def test_fig7_flamegraph(benchmark):
    result, svg = once(benchmark, run_flamegraph)
    path = results_path("fig7_backprop.svg")
    with open(path, "w") as fh:
        fh.write(svg)
    print(f"\nFig. 7 flame graph written to {path} ({len(svg)} bytes)")
    summary = result.schedule_tree.render_text()
    emit("fig7_schedule_tree.txt", summary)

    assert svg.startswith("<svg") and svg.endswith("</svg>")
    # the two fat functions of the paper's Fig. 7 are visible frames
    assert "bpnn_adjust_weights" in svg
    assert "bpnn_layerforward" in svg
    # annotations made it into tooltips
    assert "parallel" in svg or "simd" in svg or "interchange" in svg
