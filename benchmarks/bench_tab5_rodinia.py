"""Table 5: summary statistics over the Rodinia 3.1 suite.

Runs the complete pipeline over all 19 benchmarks and regenerates the
paper's summary table: #ops, %Aff, the hand-selected region and its
%ops / %Mops / %FPops, interproceduralness, the static (mini-Polly)
failure reasons, skew, post-transformation %||ops / %simdops,
%reuse / %Preuse, source vs binary loop depth, tilable depth and
%Tilops, and the fusion component structure (C -> Comp.).

``streamcluster`` exceeds its scheduler statement budget, emulating
the paper's scheduler OOM: its transformation columns print '-'.
"""


from _harness import emit, format_table, once
from repro.feedback import compute_region_metrics
from repro.pipeline import analyze
from repro.staticpoly import analyze_static
from repro.workloads import rodinia_workloads

HEADERS = [
    "benchmark", "#ops", "%Aff", "Region", "%ops", "%Mops", "%FPops",
    "itp", "Polly", "skew", "%||ops", "%simd", "%reuse", "%Preuse",
    "ld-src", "ld-bin", "TileD", "%Tilops", "C", "Comp.", "fus",
]


def run_suite():
    rows = []
    for name, factory in rodinia_workloads().items():
        spec = factory()
        result = analyze(spec)
        static = analyze_static(spec.program, spec.region_funcs)
        m = compute_region_metrics(
            result.folded,
            result.forest,
            result.control.callgraph,
            region_funcs=spec.region_funcs,
            label=spec.region_label,
            ld_src=spec.ld_src,
            fusion_heuristic=spec.fusion_heuristic,
        )
        r = m.row()
        over_budget = (
            spec.scheduler_stmt_budget is not None
            and result.folded.stmt_count() > spec.scheduler_stmt_budget
        )

        def dash(v):
            return "-" if over_budget else v

        rows.append([
            name, r["#ops"], r["%Aff"], r["Region"], r["%ops"],
            r["%Mops"], r["%FPops"], r["interproc."],
            static.reasons or "-", dash(r["skew"]), dash(r["%||ops"]),
            dash(r["%simdops"]), dash(r["%reuse"]), dash(r["%Preuse"]),
            r["ld-src"], r["ld-bin"], dash(r["TileD"]), dash(r["%Tilops"]),
            r["C"], dash(r["Comp."]), dash(r["fusion"]),
        ])
    return rows


def test_table5_rodinia_suite(benchmark):
    rows = once(benchmark, run_suite)
    table = format_table(HEADERS, rows, title="Table 5: Rodinia 3.1 summary")
    emit("table5_rodinia.txt", table)

    by_name = {r[0]: dict(zip(HEADERS, r)) for r in rows}
    assert len(rows) == 19

    # headline shapes from the paper's table
    assert by_name["hotspot"]["%Aff"] <= 25       # linearized: low
    assert by_name["heartwall"]["%Aff"] <= 10
    assert by_name["srad_v1"]["%Aff"] >= 90       # clean stencils: high
    assert by_name["hotspot3D"]["%Aff"] >= 90
    assert by_name["nw"]["skew"] == "Y"           # wavefront DPs skew
    assert by_name["pathfinder"]["skew"] == "Y"
    assert by_name["hotspot3D"]["TileD"] == "3D"
    assert by_name["backprop"]["itp"] == "Y"      # interprocedural nest
    assert by_name["streamcluster"]["%||ops"] == "-"  # scheduler budget
    # every benchmark defeats whole-region static modeling (Exp. II)
    assert all(r[8] != "" for r in rows)
