"""Parallel sharded folding: multi-core stage 2 vs the serial fold.

Times Instrumentation II + folding for the Rodinia set twice per
workload -- the serial in-process fold and the sharded fold with
``FOLD_JOBS`` worker processes (:mod:`repro.parallel`) -- and reports
the speedup.  Cells are best-of-``ROUNDS`` (minimum is the standard
estimator for CPU-bound timings; noise is strictly additive).

Two claims are checked:

* **Identity, unconditionally.**  The parallel fold must be invisible:
  codec-identical folded DDGs and byte-identical report/metrics JSON
  against a serial analysis, for every workload, on any machine.
* **Speed, where the hardware can show it.**  With ``FOLD_JOBS`` shard
  processes the suite's total stage-2 wall time must drop by
  ``GATE``x.  The default gate is 2.5x on hosts with >= 4 cores; the
  ``REPRO_PARALLEL_GATE`` environment variable overrides it (CI uses a
  relaxed 1.5x -- shared runners throttle); on smaller hosts the gate
  is recorded as skipped and the honest numbers are still written,
  because a 1-2 core machine cannot physically exhibit the fan-out.

Writes ``BENCH_parallel.json`` next to the text table so regressions
are diffable.
"""

import json
import os
import time

from _harness import emit, format_table, once, results_path
from repro.feedback.jsonout import (
    metrics_document,
    render_json,
    report_document,
)
from repro.folding import FastFoldingSink
from repro.folding.codec import encode_folded_ddg
from repro.parallel import ParallelFoldManager
from repro.pipeline import analyze, profile_control, profile_ddg
from repro.workloads import rodinia_workloads

#: shard processes the headline claim is stated for
FOLD_JOBS = 4

#: best-of-N repetitions per (workload, mode) cell
ROUNDS = 3

CPUS = os.cpu_count() or 1


def _gate():
    """(threshold, enforced, why) -- hardware-conditional."""
    env = os.environ.get("REPRO_PARALLEL_GATE")
    if env:
        return float(env), True, f"REPRO_PARALLEL_GATE={env}"
    if CPUS >= 4:
        return 2.5, True, f"{CPUS} cores"
    return 2.5, False, (
        f"only {CPUS} core(s): a {FOLD_JOBS}-way fold cannot "
        "physically speed up; identity is still asserted"
    )


def _stage2_serial(spec, control):
    sink = FastFoldingSink()
    t0 = time.perf_counter()
    profile_ddg(spec, control, sink=sink)
    folded = sink.finalize()
    return time.perf_counter() - t0, folded


def _stage2_parallel(spec, control):
    t0 = time.perf_counter()
    with ParallelFoldManager(jobs=FOLD_JOBS) as manager:
        profile_ddg(spec, control, sink=manager.router)
        folded = manager.finalize()
    return time.perf_counter() - t0, folded


def run_parallel():
    data = {}
    identity = {}
    for name, factory in rodinia_workloads().items():
        spec = factory()
        control = profile_control(spec)
        serial_s, parallel_s = [], []
        serial_folded = parallel_folded = None
        for _ in range(ROUNDS):
            dt, serial_folded = _stage2_serial(spec, control)
            serial_s.append(dt)
            dt, parallel_folded = _stage2_parallel(spec, control)
            parallel_s.append(dt)
        data[name] = {
            "serial": min(serial_s),
            "parallel": min(parallel_s),
        }
        # codec round-trip identity on the timed folds themselves
        identity[name] = encode_folded_ddg(
            parallel_folded
        ) == encode_folded_ddg(serial_folded)

    # end-to-end byte identity of the rendered feedback documents
    # (one representative workload keeps this pass cheap; the folded
    # DDGs above are compared for every workload)
    spec_name = "backprop"
    serial = analyze(rodinia_workloads()[spec_name]())
    parallel = analyze(
        rodinia_workloads()[spec_name](), fold_jobs=FOLD_JOBS
    )
    docs_identical = render_json(report_document(parallel)) == render_json(
        report_document(serial)
    ) and render_json(metrics_document(parallel)) == render_json(
        metrics_document(serial)
    )

    totals = {
        mode: sum(data[n][mode] for n in data)
        for mode in ("serial", "parallel")
    }
    return data, identity, docs_identical, totals


def test_parallel_fold_speed(benchmark):
    data, identity, docs_identical, totals = once(benchmark, run_parallel)
    gate, enforced, why = _gate()

    rows = []
    for name, per in data.items():
        rows.append([
            name,
            f"{1000 * per['serial']:.0f}ms",
            f"{1000 * per['parallel']:.0f}ms",
            (
                f"{per['serial'] / per['parallel']:.2f}x"
                if per["parallel"]
                else "-"
            ),
            "ok" if identity[name] else "DIVERGED",
        ])
    speedup = (
        totals["serial"] / totals["parallel"] if totals["parallel"] else 0.0
    )
    rows.append([
        "TOTAL",
        f"{1000 * totals['serial']:.0f}ms",
        f"{1000 * totals['parallel']:.0f}ms",
        f"{speedup:.2f}x",
        "",
    ])
    table = format_table(
        ["benchmark", "serial II+fold", f"fold_jobs={FOLD_JOBS}",
         "speedup", "identity"],
        rows,
        title=(
            f"Parallel sharded folding ({CPUS} cores, gate "
            f"{gate:.1f}x {'enforced' if enforced else 'skipped'}: {why})"
        ),
    )
    emit("parallel_fold.txt", table)

    with open(results_path("BENCH_parallel.json"), "w") as fh:
        json.dump(
            {
                "fold_jobs": FOLD_JOBS,
                "cpus": CPUS,
                "rounds": ROUNDS,
                "per_workload": data,
                "totals": totals,
                "speedup": speedup,
                "gate": gate,
                "gate_enforced": enforced,
                "gate_note": why,
                "identity": identity,
                "feedback_docs_identical": docs_identical,
            },
            fh,
            indent=2,
            sort_keys=True,
        )

    # identity is unconditional: a diverging shard merge is a bug on
    # any hardware
    assert all(identity.values()), [
        n for n, ok in identity.items() if not ok
    ]
    assert docs_identical
    # the speedup claim only where the hardware can express it
    if enforced:
        assert speedup >= gate, (
            f"fold_jobs={FOLD_JOBS} only {speedup:.2f}x over the "
            f"serial fold (gate {gate:.1f}x, {why})"
        )
