"""Experiment II: static polyhedral modeling (the Polly baseline).

Runs the mini-Polly static analyzer over every benchmark's region of
interest and regenerates the paper's findings: no benchmark's whole
region is statically modelable; smaller sub-nests (1-D/2-D, and
notably larger chunks in heartwall/lud) are; and the per-benchmark
failure reasons R/C/B/F/A/P, compared side by side with the paper's
reason column.
"""


from _harness import emit, format_table, once
from repro.staticpoly import analyze_static
from repro.workloads import rodinia_workloads

#: the paper's "Reasons why Polly failed" column (Table 5)
PAPER_REASONS = {
    "backprop": "A", "bfs": "BF", "b+tree": "BF", "cfd": "F",
    "heartwall": "RCBF", "hotspot": "B", "hotspot3D": "BF",
    "kmeans": "RFA", "lavaMD": "BF", "leukocyte": "RCBFAP", "lud": "BF",
    "myocyte": "CBA", "nn": "RF", "nw": "RF", "particlefilter": "CF",
    "pathfinder": "BP", "srad_v1": "RF", "srad_v2": "RF",
    "streamcluster": "RCBFAP",
}


def run_static():
    rows = []
    for name, factory in rodinia_workloads().items():
        spec = factory()
        report = analyze_static(spec.program, spec.region_funcs)
        ok = report.modelable_nests()
        rows.append([
            name,
            report.reasons or "(modelable)",
            PAPER_REASONS[name],
            "yes" if report.whole_region_modelable else "no",
            len(ok),
            f"{report.max_modelable_depth()}D" if ok else "-",
        ])
    return rows


def test_experiment2_static_baseline(benchmark):
    rows = once(benchmark, run_static)
    table = format_table(
        ["benchmark", "our reasons", "paper reasons", "whole region?",
         "modelable sub-nests", "max depth"],
        rows,
        title="Experiment II: static (Polly-like) modeling over Rodinia",
    )
    emit("experiment2_static.txt", table)

    # the paper's headline: Polly modeled the whole region of interest
    # for none of the 19 benchmarks
    assert all(r[3] == "no" for r in rows)
    # shared-letter overlap with the paper's reason sets: every
    # benchmark's dominant failure class is reproduced
    hits = sum(
        1 for r in rows if set(r[1]) & set(r[2])
    )
    assert hits >= 15
