"""Sweep profiling benchmark: warm vs cold multi-input sweeps.

A sweep runs the full pipeline once per grid point and folds the
per-run DDGs into one parameterized dependence model
(:func:`repro.sweep.run_sweep`).  Because every point's stage
artifacts land in the content-addressed store, re-running the *same*
sweep should do no execution at all: every run is a warm cache hit
and only the (cheap) merge + classify pass repeats.

This benchmark measures that contract on two Rodinia workloads with a
3-point sweep each:

* **cold** -- a fresh store; every point executes and folds.
* **warm** -- the same store again, best of ``WARM_ROUNDS``; every
  run must report ``cache_hit`` and the merged ``swp-`` payload must
  be byte-identical to the cold one (the model is content-addressed,
  so a byte drift would mean the merge is not deterministic).

The gate: suite-total warm speedup (cold / warm) must be at least
``GATE``x (override: ``REPRO_SWEEP_GATE``; CI uses a relaxed value --
shared runners throttle).  Writes ``BENCH_sweep.json`` next to the
text table.
"""

import json
import os
import shutil
import tempfile
import time

from _harness import emit, format_table, once, results_path
from repro.store import ArtifactStore
from repro.sweep import run_sweep

#: required suite-total warm-sweep speedup (cold / warm)
GATE = 3.0

#: best-of-N repetitions of the warm sweep
WARM_ROUNDS = 3

#: 3-point sweeps, one declared axis each (see ``params_of``)
SUITE = {
    "nw": [{"n": 8}, {"n": 10}, {"n": 12}],
    "pathfinder": [{"rows": 12}, {"rows": 20}, {"rows": 28}],
}


def _gate():
    """(threshold, source) -- the env var overrides the default."""
    env = os.environ.get("REPRO_SWEEP_GATE")
    if env:
        return float(env), f"REPRO_SWEEP_GATE={env}"
    return GATE, "default"


def _sweep(workload, points, store):
    t0 = time.perf_counter()
    result = run_sweep(workload, points, jobs=1, store=store)
    return time.perf_counter() - t0, result


def run_sweeps():
    cases = {}
    for workload, points in SUITE.items():
        cache = tempfile.mkdtemp(prefix="repro-bench-sweep-")
        try:
            store = ArtifactStore(cache)
            t_cold, cold = _sweep(workload, points, store)
            t_warm, identical, all_hits = float("inf"), True, True
            for _ in range(WARM_ROUNDS):
                dt, warm = _sweep(workload, points, store)
                t_warm = min(t_warm, dt)
                identical &= warm.payload == cold.payload
                all_hits &= all(r.cache_hit for r in warm.runs)
        finally:
            shutil.rmtree(cache, ignore_errors=True)
        cases[workload] = {
            "points": points,
            "statements": len(cold.model.statements),
            "deps": len(cold.model.deps),
            "sweep_key": cold.key,
            "cold_seconds": t_cold,
            "warm_seconds": t_warm,
            "speedup": t_cold / t_warm,
            "warm_byte_identical": identical,
            "warm_all_cache_hits": all_hits,
        }
    return cases


def test_sweep_speed(benchmark):
    cases = once(benchmark, run_sweeps)
    threshold, source = _gate()

    drifted = [n for n, c in cases.items() if not c["warm_byte_identical"]]
    assert not drifted, f"warm sweep payload drifted from cold: {drifted}"
    missed = [n for n, c in cases.items() if not c["warm_all_cache_hits"]]
    assert not missed, f"warm sweep re-executed points: {missed}"

    rows = [
        [
            name,
            len(c["points"]),
            c["statements"],
            f"{1000 * c['cold_seconds']:.0f}ms",
            f"{1000 * c['warm_seconds']:.0f}ms",
            f"{c['speedup']:.1f}x",
        ]
        for name, c in cases.items()
    ]
    t_cold = sum(c["cold_seconds"] for c in cases.values())
    t_warm = sum(c["warm_seconds"] for c in cases.values())
    suite_speedup = t_cold / t_warm
    rows.append([
        "TOTAL", "", "",
        f"{1000 * t_cold:.0f}ms",
        f"{1000 * t_warm:.0f}ms",
        f"{suite_speedup:.1f}x",
    ])
    table = format_table(
        ["workload", "points", "stmts", "cold", "warm", "speedup"],
        rows,
        title=(
            "Sweep profiling: warm (artifact-served) vs cold 3-point "
            f"sweep (warm best of {WARM_ROUNDS}; gate {threshold}x "
            f"[{source}])"
        ),
    )
    emit("sweep_speed.txt", table)

    with open(results_path("BENCH_sweep.json"), "w") as fh:
        json.dump(
            {
                "gate": threshold,
                "gate_source": source,
                "warm_rounds": WARM_ROUNDS,
                "suite_cold_seconds": t_cold,
                "suite_warm_seconds": t_warm,
                "suite_speedup": suite_speedup,
                "cases": cases,
            },
            fh,
            indent=2,
            sort_keys=True,
        )

    assert suite_speedup >= threshold, (
        f"warm sweep suite only {suite_speedup:.1f}x faster than cold "
        f"(gate: {threshold}x)"
    )
