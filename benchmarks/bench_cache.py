"""Artifact-store benchmark: cold vs warm full-suite analysis.

Runs the whole Rodinia registry through :func:`repro.runner.run_suite`
twice against one artifact store: once cold (populating it) and then
warm (every workload served from the store).  Gates the PR's headline
claims:

* a warm suite is at least **10x** faster than the cold one, end to
  end (spec construction, artifact decode, feedback re-analysis and
  report rendering all included in the warm time);
* the warm feedback reports are **bit-identical** to the cold ones;
* every folded DDG survives an encode -> decode -> encode round trip
  byte-identically (the codec is a fixpoint, not merely lossless).

The warm side is best-of-N (noise is additive, the minimum is the
estimator); the cold side is a single run, since its noise only makes
the gate harder to pass.  Writes ``BENCH_cache.json``.
"""

import json
import shutil
import tempfile
import time

from _harness import emit, format_table, once, results_path
from repro.folding.codec import decode_folded_ddg, encode_folded_ddg
from repro.pipeline import analyze
from repro.runner import run_suite
from repro.store import ArtifactStore
from repro.workloads import rodinia_workloads

#: warm repetitions (best-of)
WARM_ROUNDS = 3

#: required cold/warm suite speedup
GATE = 10.0


def _suite(names, cache_dir):
    t0 = time.perf_counter()
    results = run_suite(
        names, jobs=1, with_report=True, cache_dir=cache_dir
    )
    return time.perf_counter() - t0, results


def run_cache():
    names = list(rodinia_workloads())
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        t_cold, cold = _suite(names, cache_dir)

        warm_times = []
        warm = None
        for _ in range(WARM_ROUNDS):
            t, warm = _suite(names, cache_dir)
            warm_times.append(t)
        t_warm = min(warm_times)

        store = ArtifactStore(cache_dir)
        store_objects = len(store.entries())
        store_bytes = store.total_bytes()

        # round-trip fixpoint: re-encoding a decoded folded DDG must
        # reproduce the encoding exactly, for every workload
        roundtrip_failures = []
        for name, factory in rodinia_workloads().items():
            spec = factory()
            result = analyze(spec, store=store)
            enc = encode_folded_ddg(result.folded)
            dec = decode_folded_ddg(enc, spec.program)
            if encode_folded_ddg(dec) != enc:
                roundtrip_failures.append(name)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "cold": cold,
        "warm": warm,
        "t_cold": t_cold,
        "t_warm": t_warm,
        "warm_times": warm_times,
        "store_objects": store_objects,
        "store_bytes": store_bytes,
        "roundtrip_failures": roundtrip_failures,
    }


def test_cache_speed(benchmark):
    r = once(benchmark, run_cache)
    cold, warm = r["cold"], r["warm"]
    speedup = r["t_cold"] / r["t_warm"] if r["t_warm"] else float("inf")

    assert all(c.ok for c in cold), [c.error for c in cold if not c.ok]
    assert all(w.ok for w in warm), [w.error for w in warm if not w.ok]
    assert all(w.cache_hit for w in warm), (
        "warm pass missed the cache: "
        + ", ".join(w.name for w in warm if not w.cache_hit)
    )
    mismatched = [
        c.name for c, w in zip(cold, warm) if c.report != w.report
    ]
    assert not mismatched, f"warm reports differ: {mismatched}"
    assert not r["roundtrip_failures"], (
        f"folded-DDG codec not a fixpoint for: {r['roundtrip_failures']}"
    )

    rows = []
    for c, w in zip(cold, warm):
        rows.append([
            c.name,
            f"{1000 * c.wall_seconds:.0f}ms",
            f"{1000 * w.wall_seconds:.0f}ms",
            (
                f"{c.wall_seconds / w.wall_seconds:.1f}x"
                if w.wall_seconds
                else "-"
            ),
        ])
    rows.append([
        "TOTAL",
        f"{1000 * r['t_cold']:.0f}ms",
        f"{1000 * r['t_warm']:.0f}ms",
        f"{speedup:.1f}x",
    ])
    table = format_table(
        ["benchmark", "cold", "warm", "speedup"],
        rows,
        title=(
            "Artifact store: cold vs warm suite "
            f"(best of {WARM_ROUNDS} warm; "
            f"{r['store_objects']} artifacts, "
            f"{r['store_bytes'] / 1024:.0f} KiB)"
        ),
    )
    emit("cache_speed.txt", table)

    with open(results_path("BENCH_cache.json"), "w") as fh:
        json.dump(
            {
                "warm_rounds": WARM_ROUNDS,
                "gate": GATE,
                "t_cold": r["t_cold"],
                "t_warm": r["t_warm"],
                "warm_times": r["warm_times"],
                "speedup": speedup,
                "store_objects": r["store_objects"],
                "store_bytes": r["store_bytes"],
                "per_workload": {
                    c.name: {
                        "cold_wall": c.wall_seconds,
                        "warm_wall": w.wall_seconds,
                        "cold_stages": {
                            "instr1": c.t_instr1,
                            "instr2_fold": c.t_instr2_fold,
                            "feedback": c.t_feedback,
                        },
                        "warm_stages": {
                            "instr1": w.t_instr1,
                            "instr2_fold": w.t_instr2_fold,
                            "feedback": w.t_feedback,
                        },
                    }
                    for c, w in zip(cold, warm)
                },
            },
            fh,
            indent=2,
            sort_keys=True,
        )

    assert speedup >= GATE, (
        f"warm suite only {speedup:.1f}x faster than cold "
        f"(gate: {GATE:.0f}x)"
    )
