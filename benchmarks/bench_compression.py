"""Folding compression + scheduler scalability (paper sections 5-6).

Two of the paper's quantitative claims, measured over the suite:

1. the folded polyhedral DDG is orders of magnitude smaller than the
   raw dynamic dependence graph (billions of vertices -> hundreds of
   statements in the paper; the same ratio structure at our scale);
2. domain parameterization (section 6) bounds the number of distinct
   large constants the scheduler's ILP sees, reusing one parameter per
   value window.
"""


from _harness import emit, format_table, once
from repro.folding import FoldingSink
from repro.folding.stats import compression_stats, scheduler_statement_count
from repro.pipeline import profile_control, profile_ddg
from repro.schedule.parameterize import parameterize_domains
from repro.workloads import rodinia_workloads


def run_compression():
    rows = []
    totals = dict(dyn=0, stmts=0, deps_dyn=0, deps=0)
    for name, factory in rodinia_workloads().items():
        spec = factory()
        control = profile_control(spec)
        sink = FoldingSink()
        profile_ddg(spec, control, sink=sink)
        folded = sink.finalize()
        cs = compression_stats(folded)
        params = parameterize_domains(folded, threshold=64, slack=20)
        rows.append([
            name,
            cs.dynamic_instances,
            cs.statements,
            f"{cs.vertex_ratio:.0f}x",
            cs.scev_statements,
            scheduler_statement_count(folded),
            cs.dynamic_deps,
            cs.dep_relations,
            f"{cs.edge_ratio:.0f}x",
            params.parameter_count,
        ])
        totals["dyn"] += cs.dynamic_instances
        totals["stmts"] += cs.statements
        totals["deps_dyn"] += cs.dynamic_deps
        totals["deps"] += cs.dep_relations
    return rows, totals


def test_compression_and_parameterization(benchmark):
    rows, totals = once(benchmark, run_compression)
    table = format_table(
        ["benchmark", "dyn instrs", "stmts", "fold", "SCEVs",
         "sched stmts", "dyn deps", "relations", "fold", "#params"],
        rows,
        title=(
            "Folding compression (paper: billions of DDG nodes -> "
            "hundreds of statements) + domain parameterization"
        ),
    )
    emit("compression.txt", table)

    # the paper's claims, at our scale:
    # 1. two-plus orders of magnitude vertex compression overall
    assert totals["dyn"] / totals["stmts"] > 50
    # 2. the dependence representation shrinks comparably
    assert totals["deps_dyn"] / totals["deps"] > 20
    # 3. the scheduler sees at most hundreds of statements per benchmark
    assert all(r[5] < 500 for r in rows)
