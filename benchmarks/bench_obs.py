"""Observability overhead: what does tracing the tracer cost?

Times the full ``analyze`` pipeline per workload in three modes:

- **off** -- an explicit :data:`~repro.obs.NULL_TRACER`, the true
  untraced path (every span the pipeline opens is the shared no-op
  singleton).
- **default** -- ``analyze(spec)`` as every caller gets it: a private
  stage-granularity tracer recording the dozen-odd spans that feed
  ``StageTimings`` and the service histograms.
- **deep** -- opt-in full observability: a memory-sampling tracer plus
  a :class:`~repro.obs.TraceObserver` hooked into the interpreter, the
  configuration behind ``repro trace <workload> --mem``.  (Memory here
  is the default boundary-sampled RSS probe; ``memory="tracemalloc"``
  is deliberately outside the budget -- CPython's allocation tracer
  costs several-fold on this allocation-heavy pipeline.)

Runs over the same Rodinia workload set as ``bench_speed.py``.

Each (workload, mode) cell is the **best of N** repetitions -- the
minimum is the standard estimator for CPU-bound timings (noise is
strictly additive); the sample spread rides along so a suspicious
best can be judged against its own variance.

Gates the PR's overhead budget: the default span layer must cost at
most 5% over the untraced path across the suite, and deep tracing at
most 25%.  Writes ``BENCH_obs.json`` next to the text table so
regressions are diffable.
"""

import json
import statistics
import time

from _harness import emit, format_table, once, results_path
from repro.obs import NULL_TRACER, TraceObserver, Tracer
from repro.pipeline import analyze
from repro.workloads import rodinia_workloads

MODES = ("off", "default", "deep")

#: best-of-N repetitions per (workload, mode) cell
ROUNDS = 3

#: suite-wide overhead ceilings, relative to the untraced path
MAX_DEFAULT_OVERHEAD = 1.05
MAX_DEEP_OVERHEAD = 1.25


def _analyze_once(spec, mode):
    if mode == "off":
        t0 = time.perf_counter()
        analyze(spec, tracer=NULL_TRACER)
        return time.perf_counter() - t0
    if mode == "default":
        t0 = time.perf_counter()
        analyze(spec)
        return time.perf_counter() - t0
    tracer = Tracer(memory=True)
    observer = TraceObserver(tracer)
    try:
        t0 = time.perf_counter()
        analyze(spec, tracer=tracer, extra_observers=[observer])
        return time.perf_counter() - t0
    finally:
        tracer.close()


def run_obs():
    data = {}
    spreads = {}
    for name, factory in rodinia_workloads().items():
        spec = factory()
        data[name] = {}
        spreads[name] = {}
        # interleave modes round-robin so slow machine drift (thermal,
        # co-tenants) hits all three columns evenly, not just the last
        samples = {mode: [] for mode in MODES}
        for _ in range(ROUNDS):
            for mode in MODES:
                samples[mode].append(_analyze_once(spec, mode))
        for mode in MODES:
            vals = samples[mode]
            data[name][mode] = min(vals)
            spreads[name][mode] = {
                "min": min(vals),
                "max": max(vals),
                "mean": statistics.fmean(vals),
                "variance": statistics.pvariance(vals),
            }
    totals = {
        mode: sum(data[name][mode] for name in data) for mode in MODES
    }
    return data, spreads, totals


def test_obs_overhead(benchmark):
    data, spreads, totals = once(benchmark, run_obs)

    rows = []
    for name, per in data.items():
        off = per["off"]
        rows.append([
            name,
            f"{1000 * off:.1f}ms",
            f"{1000 * per['default']:.1f}ms",
            f"{1000 * per['deep']:.1f}ms",
            f"{per['default'] / off:.3f}x" if off else "-",
            f"{per['deep'] / off:.3f}x" if off else "-",
        ])
    default_overhead = totals["default"] / totals["off"]
    deep_overhead = totals["deep"] / totals["off"]
    rows.append([
        "TOTAL",
        f"{1000 * totals['off']:.1f}ms",
        f"{1000 * totals['default']:.1f}ms",
        f"{1000 * totals['deep']:.1f}ms",
        f"{default_overhead:.3f}x",
        f"{deep_overhead:.3f}x",
    ])
    table = format_table(
        ["benchmark", "untraced", "default spans", "deep trace",
         "default ovh", "deep ovh"],
        rows,
        title="Observability overhead: span layer vs untraced analyze",
    )
    emit("obs_overhead.txt", table)

    with open(results_path("BENCH_obs.json"), "w") as fh:
        json.dump(
            {
                "rounds": ROUNDS,
                "per_workload": data,
                "spread": spreads,
                "totals": totals,
                "overhead": {
                    "default": default_overhead,
                    "deep": deep_overhead,
                },
                "gates": {
                    "default": MAX_DEFAULT_OVERHEAD,
                    "deep": MAX_DEEP_OVERHEAD,
                },
            },
            fh,
            indent=2,
            sort_keys=True,
        )

    # the PR's overhead budget
    assert default_overhead <= MAX_DEFAULT_OVERHEAD, (
        f"default span layer costs {default_overhead:.3f}x the "
        f"untraced pipeline (budget {MAX_DEFAULT_OVERHEAD}x)"
    )
    assert deep_overhead <= MAX_DEEP_OVERHEAD, (
        f"deep tracing costs {deep_overhead:.3f}x the untraced "
        f"pipeline (budget {MAX_DEEP_OVERHEAD}x)"
    )
