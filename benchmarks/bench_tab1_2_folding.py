"""Tables 1 & 2: the dependency stream of ``bpnn_layerforward`` and
its folded polyhedral output.

Profiles the Fig. 6 pseudo-assembler kernel with the paper's exact
bounds (``0 <= cj < 15``, ``0 <= ck < 42``), prints the head of the
raw dependence input stream (Table 1) and the folded dependence
relations with their polyhedra and label expressions (Table 2).
"""


from _harness import emit, format_table, once
from repro.ddg import REG_FLOW, RecordingSink
from repro.folding import FoldingSink
from repro.pipeline import profile_control, profile_ddg
from repro.workloads.examples_paper import layerforward_kernel


def uid_of(program, func, opcode, n=0):
    return sorted(
        i.uid
        for fn, bb, i in program.all_instrs()
        if fn.name == func and i.opcode == opcode
    )[n]


def run_folding():
    spec = layerforward_kernel(n1=41, n2=15)
    control = profile_control(spec)
    rec = RecordingSink()
    profile_ddg(spec, control, sink=rec)
    sink = FoldingSink()
    profile_ddg(spec, control, sink=sink)
    return spec, rec, sink.finalize()


def test_tables_1_and_2(benchmark):
    spec, rec, folded = once(benchmark, run_folding)
    fadd = uid_of(spec.program, "bpnn_layerforward", "fadd")
    fmul = uid_of(spec.program, "bpnn_layerforward", "fmul")
    i1 = uid_of(spec.program, "bpnn_layerforward", "load", 0)

    # ---- Table 1: the raw dependency input stream (head) ----
    rows = []
    for (src, dst, label) in (
        (i1, None, "I1 -> (addr add)"),
        (fmul, fadd, "(fmul) -> I4"),
        (fadd, fadd, "I4 -> I4"),
    ):
        for dep, pts in rec.deps.items():
            if dep.src[0] != src or dep.kind != REG_FLOW:
                continue
            if dst is not None and dep.dst[0] != dst:
                continue
            for dcoord, scoord in pts[:3]:
                rows.append([label, dcoord, scoord])
            break
    t1 = format_table(
        ["dep", "(cj, ck)", "(cj', ck')"],
        rows,
        title="Table 1: dependency input stream (first points per stream)",
    )

    # ---- Table 2: folded output ----
    rows2 = []
    for (src, dst, name) in (
        (i1, None, "I1 -> I2 (addr)"),
        (fmul, fadd, "I2*I3 -> I4"),
        (fadd, fadd, "I4 -> I4"),
    ):
        for dep in folded.deps.values():
            if dep.key.src[0] != src or dep.key.kind != REG_FLOW:
                continue
            if dst is not None and dep.key.dst[0] != dst:
                continue
            fdep = dep
            poly = fdep.domain.pretty()
            fn = fdep.relation.pieces[0][1]
            rows2.append(
                [name, poly, f"cj' = {fn[0].pretty(['cj','ck'])}, "
                             f"ck' = {fn[1].pretty(['cj','ck'])}"]
            )
            break
    # the access-function row (Table 2's "ld f(cj, ck)" label column)
    i3 = uid_of(spec.program, "bpnn_layerforward", "load", 2)
    (fs,) = folded.statements_of_uid(i3)
    rows2.append(
        ["I3 access fn", fs.domain.pretty(),
         f"addr = {fs.label_fn.exprs[0].pretty(['cj','ck'])}"]
    )
    t2 = format_table(
        ["stream", "polyhedron", "label expression"],
        rows2,
        title="Table 2: folded dependences / accesses",
    )
    emit("table1_2.txt", t1 + "\n\n" + t2)

    # sanity assertions: the paper's exact shapes
    (rec_dep,) = [
        d for d in folded.deps.values()
        if d.key.src[0] == fadd and d.key.dst[0] == fadd
        and d.key.kind == REG_FLOW
    ]
    assert rec_dep.domain.card() == 15 * 41          # 1 <= ck < 42
    assert rec_dep.relation.pieces[0][1][1].const == -1  # ck' = ck - 1
