"""Engine speed comparison: fast path vs reference interpreter.

Times the three execution modes of the pipeline -- native run,
Instrumentation I, and Instrumentation II + folding -- per workload
for both engines (the block-compiled fast engine with the batched
builder and fast folding backend, and the reference per-instruction
interpreter with the reference folder), and reports the speedups.

Each (workload, engine, stage) cell is the **best of N** back-to-back
repetitions -- the minimum is the standard estimator for CPU-bound
timings (noise is strictly additive); the per-stage sample spread is
recorded alongside so a suspicious best can be judged against its own
variance.

Writes the machine-readable ``BENCH_speed.json`` next to the text
table so regressions are diffable, and asserts the headline claim:
the fast engine folds the whole suite's Instrumentation II at least
2x faster than the reference engine while producing bit-identical
DDGs (the equivalence tests assert the identity; this benchmark
asserts the speed).
"""

import json
import statistics
import time

from _harness import emit, format_table, once, results_path
from repro.folding import FastFoldingSink, FoldingSink
from repro.isa import run_program
from repro.pipeline import profile_control, profile_ddg
from repro.workloads import rodinia_workloads

ENGINES = (
    ("fast", FastFoldingSink),
    ("reference", FoldingSink),
)

STAGES = ("native", "instr1", "instr2_fold")

#: best-of-N repetitions per (workload, engine) cell
ROUNDS = 3


def _time_engine_once(spec, engine, sink_cls):
    args, mem = spec.make_state()
    t0 = time.perf_counter()
    run_program(spec.program, args=args, memory=mem, engine=engine)
    native = time.perf_counter() - t0

    control = profile_control(spec, engine=engine)
    stage1 = control.wall_seconds

    sink = sink_cls()
    t0 = time.perf_counter()
    profile_ddg(spec, control, sink=sink, engine=engine)
    sink.finalize()
    stage2 = time.perf_counter() - t0
    return {"native": native, "instr1": stage1, "instr2_fold": stage2}


def _time_engine(spec, engine, sink_cls, rounds=ROUNDS):
    """Best-of-``rounds`` per stage, plus the sample spread."""
    samples = {stage: [] for stage in STAGES}
    for _ in range(rounds):
        one = _time_engine_once(spec, engine, sink_cls)
        for stage in STAGES:
            samples[stage].append(one[stage])
    best = {stage: min(samples[stage]) for stage in STAGES}
    spread = {
        stage: {
            "min": min(vals),
            "max": max(vals),
            "mean": statistics.fmean(vals),
            "variance": statistics.pvariance(vals),
        }
        for stage, vals in samples.items()
    }
    return best, spread


def run_speed():
    data = {}
    spreads = {}
    for name, factory in rodinia_workloads().items():
        spec = factory()
        data[name] = {}
        spreads[name] = {}
        for engine, sink_cls in ENGINES:
            best, spread = _time_engine(spec, engine, sink_cls)
            data[name][engine] = best
            spreads[name][engine] = spread
    totals = {
        engine: {
            stage: sum(data[n][engine][stage] for n in data)
            for stage in STAGES
        }
        for engine, _ in ENGINES
    }
    return data, spreads, totals


def test_engine_speed(benchmark):
    data, spreads, totals = once(benchmark, run_speed)

    rows = []
    for name, per in data.items():
        f, r = per["fast"], per["reference"]
        rows.append([
            name,
            f"{1000 * f['native']:.0f}ms",
            f"{1000 * f['instr2_fold']:.0f}ms",
            f"{1000 * r['instr2_fold']:.0f}ms",
            f"{r['native'] / f['native']:.2f}x" if f["native"] else "-",
            (
                f"{r['instr2_fold'] / f['instr2_fold']:.2f}x"
                if f["instr2_fold"]
                else "-"
            ),
        ])
    speedup = {
        stage: totals["reference"][stage] / totals["fast"][stage]
        for stage in ("native", "instr1", "instr2_fold")
        if totals["fast"][stage]
    }
    rows.append([
        "TOTAL",
        f"{1000 * totals['fast']['native']:.0f}ms",
        f"{1000 * totals['fast']['instr2_fold']:.0f}ms",
        f"{1000 * totals['reference']['instr2_fold']:.0f}ms",
        f"{speedup['native']:.2f}x",
        f"{speedup['instr2_fold']:.2f}x",
    ])
    table = format_table(
        ["benchmark", "fast native", "fast II+fold", "ref II+fold",
         "native speedup", "II+fold speedup"],
        rows,
        title="Engine speed: block-compiled fast path vs reference",
    )
    emit("engine_speed.txt", table)

    with open(results_path("BENCH_speed.json"), "w") as fh:
        json.dump(
            {
                "rounds": ROUNDS,
                "per_workload": data,
                "spread": spreads,
                "totals": totals,
                "speedup": speedup,
            },
            fh,
            indent=2,
            sort_keys=True,
        )

    # the PR's headline: >= 2x on the suite's Instrumentation II + fold
    assert speedup["instr2_fold"] >= 2.0, (
        f"fast engine only {speedup['instr2_fold']:.2f}x faster on "
        "Instrumentation II + folding"
    )
    # and the compiled VM must not be slower natively
    assert speedup["native"] >= 1.0
