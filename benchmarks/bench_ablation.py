"""Ablations of the pipeline's key design choices.

DESIGN.md commits to three mechanisms whose value the paper argues
qualitatively; these ablations measure them:

1. **SCEV recognition off** (paper section 5: without it, the
   induction/address chains "greatly and unnecessarily constrain
   possible code transformations") -- parallel loops should largely
   disappear because every loop carries its own counter recurrence.
2. **Piecewise label folding off** (single affine piece per stream,
   the 2019 prototype's limitation) -- boundary-clamped and blocked
   benchmarks lose their %Aff.
3. **Storage (anti/output) dependence tracking off** -- profiling gets
   cheaper, but the legality analysis loses the write-after-read
   constraints that, e.g., make in-place stencils require skewing.
"""


from _harness import emit, format_table, once
from repro.folding import FoldingSink
from repro.pipeline import analyze, profile_control, profile_ddg
from repro.schedule import analyze_forest, build_nest_forest
from repro.workloads import rodinia_workloads

BENCHES = ("backprop", "srad_v1", "hotspot3D", "nw")


def parallel_fraction(folded, forest):
    from repro.schedule.deps import loop_path

    total = 0
    par = 0
    for fs in folded.statements.values():
        path = loop_path(fs.stmt)
        if not path:
            continue
        total += fs.count
        chain = [forest.node_at(path[: k + 1]) for k in range(len(path))]
        if any(n is not None and n.parallel for n in chain):
            par += fs.count
    return 100.0 * par / total if total else 0.0


def run_ablations():
    rows = []
    for name in BENCHES:
        spec = rodinia_workloads()[name]()

        # baseline
        base = analyze(spec)
        base_par = parallel_fraction(base.folded, base.forest)
        base_aff = 100.0 * base.folded.affine_ops() / base.folded.dyn_ops()

        # 1. SCEV recognition off: readmit the induction chains
        control = profile_control(spec)
        sink = FoldingSink()
        profile_ddg(spec, control, sink=sink)
        noscev = sink.finalize()
        for fs in noscev.statements.values():
            fs.is_scev = False
        forest_ns = analyze_forest(build_nest_forest(noscev))
        noscev_par = parallel_fraction(noscev, forest_ns)

        # 2. single-piece label folding (the paper-era folder)
        single = analyze(spec, max_pieces=1)
        single_aff = (
            100.0 * single.folded.affine_ops() / single.folded.dyn_ops()
        )

        # 3. no anti/output tracking: fewer dependences to fold
        lean = analyze(spec, track_anti_output=False)
        lean_deps = len(lean.folded.deps)
        full_deps = len(base.folded.deps)

        rows.append([
            name,
            f"{base_par:.0f}%",
            f"{noscev_par:.0f}%",
            f"{base_aff:.0f}%",
            f"{single_aff:.0f}%",
            full_deps,
            lean_deps,
        ])
    return rows


def test_design_choice_ablations(benchmark):
    rows = once(benchmark, run_ablations)
    table = format_table(
        ["benchmark", "par% (base)", "par% (no SCEV)",
         "%Aff (base)", "%Aff (1-piece)",
         "deps (full)", "deps (no anti/out)"],
        rows,
        title="Ablations: SCEV recognition, piecewise folding, storage deps",
    )
    emit("ablation.txt", table)

    by = {r[0]: r for r in rows}

    def pct(s):
        return int(s.rstrip("%"))

    # 1. without SCEV recognition, parallelism collapses everywhere
    # (nw has none to lose: its DP is wavefront-only even at baseline)
    for name in ("backprop", "srad_v1", "hotspot3D"):
        assert pct(by[name][2]) < pct(by[name][1]), name
    assert all(pct(by[n][2]) <= 5 for n in BENCHES)

    # 2. single-piece folding loses affinity on boundary-clamped codes
    # (srad_v1's iN/iS/jW/jE index arrays need piecewise labels)
    assert pct(by["srad_v1"][4]) < pct(by["srad_v1"][3])

    # 3. dropping storage deps never grows the dependence set, and
    # shrinks it where in-program writes are re-read (the stencils);
    # kernels whose arrays are written at most once per location have
    # no storage dependences to drop (backprop, nw)
    for name in BENCHES:
        assert by[name][6] <= by[name][5], name
    assert by["srad_v1"][6] < by["srad_v1"][5]
    assert by["hotspot3D"][6] < by["hotspot3D"][5]
