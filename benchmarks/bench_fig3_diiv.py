"""Fig. 3: dynamic IIV traces for the paper's two examples, the folded
domains (Fig. 3k), and the schedule-tree / CCT comparison of Fig. 5.

Runs Example 1 (interprocedural nest) and Example 2 (recursion)
through the pipeline and prints, per executed step of Example 2's
recursive region, the evolving dynamic IIV; then the folded iteration
domains, which for the recursion must index C's instances by the
recursion depth while the vector length stays bounded.
"""


from _harness import emit, format_table, once
from repro.cfg import (
    ControlStructureBuilder,
    LoopEventGenerator,
    build_loop_forest,
    build_recursive_component_set,
)
from repro.folding import FoldingSink
from repro.iiv import DynamicIIV
from repro.isa import run_program
from repro.pipeline import profile_control, profile_ddg
from repro.workloads.examples_paper import build_fig3_example1, build_fig3_example2


def trace_diivs(spec):
    csb = ControlStructureBuilder(record_trace=True)
    args, mem = spec.make_state()
    run_program(spec.program, args=args, memory=mem, observers=[csb])
    forests = {
        f: build_loop_forest(f, c.nodes, c.edges, c.entry)
        for f, c in csb.cfgs.items()
    }
    rcs = build_recursive_component_set(
        csb.callgraph.nodes, csb.callgraph.edges, csb.callgraph.root
    )
    gen = LoopEventGenerator(forests, rcs)
    diiv = DynamicIIV()
    steps = []
    for ev in csb.trace:
        emitted = list(gen.process(ev))
        for le in emitted:
            diiv.apply(le)
        if emitted:
            steps.append((" ".join(str(e) for e in emitted), diiv.pretty()))
    return steps


def fold_domains(spec):
    control = profile_control(spec)
    sink = FoldingSink()
    profile_ddg(spec, control, sink=sink)
    folded = sink.finalize()
    return folded


def run_all():
    ex1, ex2 = build_fig3_example1(), build_fig3_example2(depth=3)
    return (
        trace_diivs(ex1),
        trace_diivs(ex2),
        fold_domains(ex2),
    )


def test_fig3_diiv_traces(benchmark):
    steps1, steps2, folded2 = once(benchmark, run_all)
    t1 = format_table(
        ["loop events", "dynamic IIV"], steps1[:14],
        title="Fig. 3d: Example 1 trace (head)",
    )
    t2 = format_table(
        ["loop events", "dynamic IIV"], steps2,
        title="Fig. 3i: Example 2 trace (recursion folds to one dim)",
    )
    rows = []
    for fs in folded2.statements.values():
        if fs.stmt.func == "C" and fs.depth >= 1:
            rows.append([
                "C-in-recursion", fs.domain.pretty(), fs.count
            ])
    t3 = format_table(
        ["statement", "folded domain", "instances"], rows,
        title="Fig. 3k: folded domains (C indexed by recursion depth)",
    )
    emit("fig3_diiv.txt", t1 + "\n\n" + t2 + "\n\n" + t3)

    # the key property: IIV length bounded despite recursion depth 3
    max_dims = max(s[1].count(", ") for s in steps2)
    assert max_dims <= 2
    assert any("Ec(" in s[0] for s in steps2)
    assert any("Ir(" in s[0] for s in steps2)
    assert any("Xr(" in s[0] for s in steps2)
    # C's recursive instances folded into a 1-D domain 0..2
    assert rows and any("3" == str(r[2]) for r in rows)
