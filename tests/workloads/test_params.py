"""Declarative workload param registry tests (sweep satellite).

Declaring params must be free: a factory called with no bindings must
build the byte-identical program and initial state it always built.
"""

import pytest

from repro.store.keys import keys_for_spec as _keys_for_spec
from repro.workloads import (
    RODINIA_ORDER,
    all_params,
    all_workloads,
    params_of,
    registry,
)


def fingerprint(spec) -> str:
    return _keys_for_spec(
        spec,
        engine="fast",
        fuel=50_000_000,
        max_pieces=6,
        clamp=None,
        track_anti_output=True,
        build_schedule_tree=True,
    ).stage2


class TestDeclarations:
    def test_every_rodinia_workload_declares_params(self):
        declared = all_params()
        for name in RODINIA_ORDER:
            assert declared.get(name), f"{name} declares no params"

    def test_every_declaration_has_a_sweepable_axis(self):
        for name in RODINIA_ORDER:
            sweeps = [p for p in params_of(name) if p.sweep]
            assert sweeps, f"{name} has no sweep-able param"
            for p in sweeps:
                assert len(p.sweep) >= 2
                assert p.default > 0

    def test_paramless_workloads_report_empty(self):
        assert params_of("mm") == ()
        assert params_of("no_such_workload") == ()


class TestDefaultsAreByteIdentical:
    @pytest.mark.parametrize("name", RODINIA_ORDER)
    def test_explicit_defaults_match_implicit(self, name):
        """Binding every param to its declared default must produce
        the same content fingerprints as binding nothing."""
        factory = registry()[name]
        defaults = {p.name: p.default for p in params_of(name)}
        assert fingerprint(factory()) == fingerprint(
            factory(**defaults)
        )


class TestBindings:
    def test_unknown_param_raises(self):
        with pytest.raises(TypeError, match="no param"):
            registry()["nw"](depth=3)

    def test_binding_changes_the_fingerprint(self):
        factory = registry()["nw"]
        assert fingerprint(factory(n=8)) != fingerprint(
            factory(n=12)
        )

    def test_values_coerced_to_int(self):
        factory = registry()["nw"]
        assert fingerprint(factory(n="8")) == fingerprint(
            factory(n=8)
        )

    def test_registry_matches_all_workloads(self):
        assert set(registry()) == set(all_workloads())
