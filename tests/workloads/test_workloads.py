"""Workload-suite tests: every benchmark runs, terminates, computes
something sensible, and exhibits its Table 5 structural signature."""

import pytest

from repro.isa import run_program
from repro.pipeline import analyze
from repro.workloads import all_workloads, rodinia_workloads

ALL = sorted(all_workloads())


@pytest.mark.parametrize("name", ALL)
def test_workload_executes(name):
    spec = all_workloads()[name]()
    args, mem = spec.make_state()
    result, stats = run_program(spec.program, args=args, memory=mem)
    assert stats.dyn_instrs > 0


@pytest.mark.parametrize("name", sorted(rodinia_workloads()))
def test_workload_profiles(name):
    spec = rodinia_workloads()[name]()
    result = analyze(spec)
    assert result.folded.stmt_count() > 0
    assert result.folded.dyn_ops() == result.ddg_profile.builder.instr_count
    # the two instrumentation runs see the same execution
    assert result.control.stats.dyn_instrs == result.ddg_profile.stats.dyn_instrs


def test_registry_complete():
    assert len(rodinia_workloads()) == 19
    assert "gemsfdtd" in all_workloads()


def test_deterministic_reruns():
    """Profiling the same spec twice folds to identical statistics."""
    spec = rodinia_workloads()["kmeans"]()
    a = analyze(spec)
    b = analyze(spec)
    assert a.folded.dyn_ops() == b.folded.dyn_ops()
    assert a.folded.affine_ops() == b.folded.affine_ops()
    assert len(a.folded.deps) == len(b.folded.deps)


class TestFunctionalCorrectness:
    """The workloads compute real results (the substrate is not a mock)."""

    def test_backprop_updates_weights(self):
        from repro.workloads.backprop import build_backprop

        spec = build_backprop()
        args, mem = spec.make_state()
        w_matrix = args[3]  # input_weights (array of row pointers)
        row0 = mem.load(w_matrix)
        before = mem.read_array(row0, 4)
        run_program(spec.program, args=args, memory=mem)
        after = mem.read_array(row0, 4)
        assert before != after  # training modified the weights

    def test_nw_fills_score_matrix(self):
        from repro.workloads.nw import build_nw

        spec = build_nw(n=6)
        args, mem = spec.make_state()
        score = args[0]
        run_program(spec.program, args=args, memory=mem)
        # interior cells were written
        vals = mem.read_array(score + 7 + 1, 5)
        assert any(v != 0.0 for v in vals)

    def test_bfs_reaches_nodes(self):
        from repro.workloads.bfs import build_bfs

        spec = build_bfs(nnodes=16, avg_degree=4)
        args, mem = spec.make_state()
        cost = args[5]
        run_program(spec.program, args=args, memory=mem)
        costs = mem.read_array(cost, 16)
        assert max(costs) >= 1  # at least one node beyond the source

    def test_lud_factorizes(self):
        """L*U of the in-place result reproduces the original matrix."""
        from repro.workloads.lud import build_lud

        n = 8
        spec = build_lud(n=n, block=4)
        args, mem = spec.make_state()
        a_addr = args[0]
        original = [mem.read_array(a_addr + i * n, n) for i in range(n)]
        run_program(spec.program, args=args, memory=mem)
        lu = [mem.read_array(a_addr + i * n, n) for i in range(n)]
        for i in range(n):
            for j in range(n):
                acc = 0.0
                for k in range(min(i, j) + 1):
                    l = lu[i][k] if k != i else 1.0
                    u = lu[k][j]
                    acc += l * u
                assert acc == pytest.approx(original[i][j], rel=1e-6, abs=1e-9)

    def test_kmeans_memberships_valid(self):
        from repro.workloads.kmeans import build_kmeans

        spec = build_kmeans(npoints=10, nclusters=3)
        args, mem = spec.make_state()
        membership = args[2]
        run_program(spec.program, args=args, memory=mem)
        ms = mem.read_array(membership, 10)
        assert all(0 <= m < 3 for m in ms)

    def test_btree_queries_answered(self):
        from repro.workloads.btree import build_btree

        spec = build_btree()
        args, mem = spec.make_state()
        queries, answers, nq = args[1], args[2], args[3]
        run_program(spec.program, args=args, memory=mem)
        for q in range(nq):
            key = mem.load(queries + q)
            assert mem.load(answers + q) == key * 10  # stored value

    def test_hotspot_diffuses_heat(self):
        from repro.workloads.hotspot import build_hotspot

        spec = build_hotspot(rows=6, cols=6, steps=2)
        args, mem = spec.make_state()
        temp = args[0]
        before = mem.read_array(temp, 36)
        run_program(spec.program, args=args, memory=mem)
        after = mem.read_array(temp, 36)
        assert before != after


class TestSignatures:
    """Spot checks of the Table 5 structural signatures."""

    def test_nw_needs_skew(self):
        result = analyze(rodinia_workloads()["nw"]())
        leaves = [
            n for n in result.forest.walk()
            if n.is_innermost() and n.ops_total > 100
        ]
        assert leaves
        for leaf in leaves:
            chain_parallel = any(
                result.forest.node_at(leaf.path[: k + 1]).parallel
                for k in range(leaf.depth)
            )
            assert not chain_parallel          # wavefront only
            assert leaf.band_start == 0        # but fully permutable

    def test_hotspot3d_spatial_band(self):
        result = analyze(rodinia_workloads()["hotspot3D"]())
        leaves = [
            n for n in result.forest.walk()
            if n.is_innermost() and n.depth == 4 and n.ops_total > 500
        ]
        assert leaves  # the stencil and the copy-back sweep
        for leaf in leaves:
            # the shared time loop never joins a per-nest band
            assert leaf.depth - leaf.band_start == 3

    def test_streamcluster_budget_flag(self):
        spec = rodinia_workloads()["streamcluster"]()
        assert spec.scheduler_stmt_budget is not None

    def test_backprop_region_interprocedural(self):
        from repro.feedback import compute_region_metrics

        spec = rodinia_workloads()["backprop"]()
        r = analyze(spec)
        m = compute_region_metrics(
            r.folded, r.forest, r.control.callgraph,
            region_funcs=spec.region_funcs, label=spec.region_label,
        )
        assert m.interprocedural
        assert m.tile_depth == 2
