"""PolyBench kernel ground truths through the full pipeline."""

import pytest

from repro.pipeline import analyze
from repro.workloads.polybench import POLYBENCH


@pytest.fixture(scope="module")
def results():
    return {name: analyze(factory()) for name, factory in POLYBENCH.items()}


def hot_leaf(result, min_depth=1):
    return max(
        (
            n
            for n in result.forest.walk()
            if n.is_innermost() and n.depth >= min_depth
        ),
        key=lambda n: n.ops_total,
    )


def chain(result, leaf):
    return [result.forest.node_at(leaf.path[: k + 1]) for k in range(leaf.depth)]


class TestAffinity:
    @pytest.mark.parametrize("name", sorted(POLYBENCH))
    def test_fully_affine(self, results, name):
        """PolyBench hot regions are affine (paper section 5)."""
        r = results[name]
        assert r.folded.affine_ops() / r.folded.dyn_ops() >= 0.99


class TestGemm:
    def test_ij_parallel_k_reduction(self, results):
        r = results["gemm"]
        leaf = hot_leaf(r, min_depth=3)
        i, j, k = chain(r, leaf)
        assert i.parallel and j.parallel
        assert not k.parallel            # the C accumulation
        assert k.parallel_reduction is False or True  # memory recurrence

    def test_3d_band(self, results):
        r = results["gemm"]
        leaf = hot_leaf(r, min_depth=3)
        assert leaf.depth - leaf.band_start == 3


class TestJacobi2d:
    def test_spatial_band_without_time(self, results):
        r = results["jacobi2d"]
        leaf = hot_leaf(r, min_depth=3)
        assert leaf.depth == 3           # (t, i, j)
        assert leaf.depth - leaf.band_start == 2  # copy sweep blocks time
        i, = [n for n in chain(r, leaf) if n.depth == 2]
        assert i.parallel

    def test_spatial_loops_parallel(self, results):
        r = results["jacobi2d"]
        leaf = hot_leaf(r, min_depth=3)
        t, i, j = chain(r, leaf)
        assert not t.parallel
        assert i.parallel and j.parallel


class TestCholesky:
    def test_outer_sequential(self, results):
        r = results["cholesky"]
        leaf = hot_leaf(r, min_depth=3)
        outer = chain(r, leaf)[0]
        assert not outer.parallel        # factorization recurrence

    def test_triangular_domains_fold_exactly(self, results):
        r = results["cholesky"]
        deep = [
            fs for fs in r.folded.statements.values() if fs.depth == 3
        ]
        assert deep
        assert all(fs.exact for fs in deep)


class TestAtax:
    def test_two_matvecs_fuse_smartly(self, results):
        from repro.schedule import fuse_components

        r = results["atax"]
        fr = fuse_components(r.forest, heuristic="S")
        # the second matvec consumes tmp from the first: shared data,
        # but reversed access order -> fusion legality decides
        assert fr.components_before == 2

    def test_outer_loops_parallel(self, results):
        r = results["atax"]
        for leaf in (n for n in r.forest.walk() if n.is_innermost()):
            if leaf.depth != 2:
                continue
            outer = chain(r, leaf)[0]
            assert outer.parallel


class TestTrmm:
    def test_triangular_k_bound(self, results):
        r = results["trmm"]
        leaf = hot_leaf(r, min_depth=3)
        # domain k in [i+1, n): triangular, folds exactly
        deep = [fs for fs in r.folded.statements.values() if fs.depth == 3]
        assert deep and all(fs.exact for fs in deep)

    def test_ij_parallel(self, results):
        r = results["trmm"]
        leaf = hot_leaf(r, min_depth=3)
        i, j, k = chain(r, leaf)
        assert i.parallel and j.parallel


class TestGemver:
    def test_rank_update_fully_parallel(self, results):
        r = results["gemver"]
        # identify the rank-1 update nest by its debug line (loop ids
        # are assigned in CFG discovery order, not source order)
        (rank_update,) = [
            n
            for n in r.forest.walk()
            if n.is_innermost()
            and n.depth == 2
            and any(s.stmt.instr.src_line == 62 for s in n.stmts)
        ]
        i, j = chain(r, rank_update)
        assert i.parallel and j.parallel

    def test_matvec_inner_is_reduction(self, results):
        r = results["gemver"]
        (matvec,) = [
            n
            for n in r.forest.walk()
            if n.is_innermost()
            and n.depth == 2
            and any(s.stmt.instr.src_line == 67 for s in chain(r, n)[0].stmts)
        ]
        i, j = chain(r, matvec)
        assert i.parallel
        assert not j.parallel            # the acc recurrence
        assert j.parallel_reduction      # removable by a reduction clause


class TestSeidel2d:
    def test_no_parallel_loop_needs_skew(self, results):
        r = results["seidel2d"]
        leaf = hot_leaf(r, min_depth=3)
        t, i, j = chain(r, leaf)
        assert not t.parallel and not i.parallel and not j.parallel
        # a band exists only with skewing (time-skewing result)
        band = leaf.depth - leaf.band_start
        if band >= 2:
            assert any(n.skew_factor for n in chain(r, leaf))

    def test_wavefront_reported(self, results):
        from repro.feedback import compute_region_metrics

        r = results["seidel2d"]
        m = compute_region_metrics(
            r.folded, r.forest, r.control.callgraph, label="seidel2d"
        )
        assert m.skew


class TestMvt:
    def test_both_matvecs_outer_parallel(self, results):
        r = results["mvt"]
        leaves = [n for n in r.forest.walk() if n.is_innermost() and n.depth == 2]
        assert len(leaves) == 2
        for leaf in leaves:
            i, j = chain(r, leaf)
            assert i.parallel
            assert j.parallel_reduction and not j.parallel

    def test_independent_matvecs_not_smartfused(self, results):
        from repro.schedule import fuse_components

        r = results["mvt"]
        fr = fuse_components(r.forest, heuristic="S")
        # read-read sharing of A only: no flow between them
        assert fr.components_after == fr.components_before == 2


class TestSyrk:
    def test_triangular_ij_parallel(self, results):
        r = results["syrk"]
        leaf = hot_leaf(r, min_depth=3)
        i, j, k = chain(r, leaf)
        assert i.parallel and j.parallel
        assert not k.parallel

    def test_triangular_domain_exact(self, results):
        r = results["syrk"]
        deep = [fs for fs in r.folded.statements.values() if fs.depth == 3]
        assert deep and all(fs.exact for fs in deep)
        # the triangle has n(n+1)/2 * n points
        counts = {fs.count for fs in deep if not fs.stmt.instr.is_mem}
        assert (8 * 9 // 2) * 8 in counts
