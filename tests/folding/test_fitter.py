"""Unit + property tests for the incremental affine fitter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.folding import IncrementalAffineFitter, VectorAffineFitter
from repro.poly import AffineExpr


class TestIncrementalFitter:
    def test_exact_line(self):
        f = IncrementalAffineFitter(1)
        for x in range(10):
            f.add((x,), 3 * x + 7)
        assert f.result() == AffineExpr((3,), 7)

    def test_plane(self):
        f = IncrementalAffineFitter(2)
        for i in range(4):
            for j in range(4):
                f.add((i, j), 5 * i - 2 * j + 1)
        assert f.result() == AffineExpr((5, -2), 1)

    def test_non_affine_fails(self):
        f = IncrementalAffineFitter(1)
        for x in range(5):
            f.add((x,), x * x)
        assert f.result() is None
        assert f.failed

    def test_late_violation_fails(self):
        f = IncrementalAffineFitter(1)
        for x in range(100):
            f.add((x,), x)
        f.add((100,), 0)
        assert f.result() is None

    def test_short_stream_still_fits(self):
        f = IncrementalAffineFitter(2)
        f.add((0, 0), 5)
        e = f.result()
        assert e is not None and e((0, 0)) == 5

    def test_degenerate_stream_single_column(self):
        # all points share i = 3: fit is underdetermined but verified
        f = IncrementalAffineFitter(2)
        for j in range(5):
            f.add((3, j), 2 * j)
        e = f.result()
        assert e is not None
        for j in range(5):
            assert e((3, j)) == 2 * j

    def test_rational_fit(self):
        f = IncrementalAffineFitter(1)
        for x in range(0, 10, 2):
            f.add((x,), x // 2)
        assert f.result() == AffineExpr((1,), 0, 2)

    def test_constant_stream(self):
        # degenerate sample (all points on a line): any verified
        # interpolant is acceptable; it must match every point
        f = IncrementalAffineFitter(3)
        for i in range(3):
            f.add((i, i + 1, 2 * i), 9)
        e = f.result()
        assert e is not None
        for i in range(3):
            assert e((i, i + 1, 2 * i)) == 9

    def test_truly_constant_stream(self):
        f = IncrementalAffineFitter(2)
        for i in range(3):
            for j in range(3):
                f.add((i, j), 9)
        e = f.result()
        assert e is not None and e.is_constant()

    def test_failed_stays_failed(self):
        f = IncrementalAffineFitter(1)
        f.add((0,), 0)
        f.add((1,), 1)
        f.add((2,), 5)
        f.add((3,), 3)  # would fit x again, but stream already failed
        assert f.result() is None

    @given(
        a=st.integers(-20, 20),
        b=st.integers(-20, 20),
        c=st.integers(-50, 50),
        pts=st.lists(
            st.tuples(st.integers(-30, 30), st.integers(-30, 30)),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_recovers_any_affine_function(self, a, b, c, pts):
        f = IncrementalAffineFitter(2)
        for (x, y) in pts:
            f.add((x, y), a * x + b * y + c)
        e = f.result()
        assert e is not None
        for (x, y) in pts:
            assert e((x, y)) == a * x + b * y + c

    @given(
        pts=st.lists(
            st.tuples(st.integers(0, 10), st.integers(-100, 100)),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_result_matches_all_points_or_none(self, pts):
        f = IncrementalAffineFitter(1)
        for x, v in pts:
            f.add((x,), v)
        e = f.result()
        if e is not None:
            for x, v in pts:
                assert e((x,)) == v
        else:
            # verify a genuine conflict exists (same x, different v, or
            # three non-collinear samples)
            assert len({x for x, _ in pts}) >= 2 or len(
                {v for _, v in pts}
            ) > 1


class TestVectorFitter:
    def test_vector_fit(self):
        f = VectorAffineFitter(2, 2)
        for i in range(3):
            for j in range(3):
                f.add((i, j), (i, j - 1))
        rs = f.result()
        assert rs is not None
        assert rs[0] == AffineExpr((1, 0), 0)
        assert rs[1] == AffineExpr((0, 1), -1)

    def test_one_bad_component_fails_all(self):
        f = VectorAffineFitter(1, 2)
        for x in range(4):
            f.add((x,), (x, x * x))
        assert f.result() is None

    def test_arity_mismatch_fails(self):
        f = VectorAffineFitter(1, 2)
        f.add((0,), (1, 2))
        f.add((1,), (1,))
        assert f.result() is None
