"""Domain folder tests: exact trapezoids, splits, over-approximation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.folding import DomainFolder


def fold_points(points, dim, max_pieces=6):
    f = DomainFolder(dim)
    for p in points:
        f.add(p)
    return f.fold(max_pieces)


class TestExactShapes:
    def test_box(self):
        pts = [(i, j) for i in range(4) for j in range(3)]
        dom, exact = fold_points(pts, 2)
        assert exact
        assert dom.card() == 12
        assert all(dom.contains(p) for p in pts)

    def test_triangle(self):
        pts = [(i, j) for i in range(5) for j in range(i + 1)]
        dom, exact = fold_points(pts, 2)
        assert exact
        assert len(dom.pieces) == 1
        assert dom.card() == 15
        assert dom.contains((4, 4)) and not dom.contains((2, 3))

    def test_single_point(self):
        dom, exact = fold_points([(7, 8)], 2)
        assert exact and dom.card() == 1

    def test_zero_dim(self):
        dom, exact = fold_points([()], 0)
        assert exact and dom.card() == 1

    def test_1d_range(self):
        dom, exact = fold_points([(i,) for i in range(3, 9)], 1)
        assert exact
        assert dom.card() == 6
        assert dom.contains((3,)) and dom.contains((8,))
        assert not dom.contains((9,))

    def test_3d_prism(self):
        pts = [
            (i, j, k)
            for i in range(3)
            for j in range(i + 1)
            for k in range(2)
        ]
        dom, exact = fold_points(pts, 3)
        assert exact
        assert dom.card() == len(pts)

    def test_shifted_bounds(self):
        # j from i to i+2: affine lower AND upper bounds
        pts = [(i, j) for i in range(4) for j in range(i, i + 3)]
        dom, exact = fold_points(pts, 2)
        assert exact
        assert len(dom.pieces) == 1
        assert dom.card() == 12

    def test_empty(self):
        dom, exact = fold_points([], 2)
        assert exact and dom.is_empty()


class TestSplitting:
    def test_piecewise_inner_bound(self):
        # inner trip count jumps at i == 3: two exact pieces
        pts = [(i, j) for i in range(6) for j in range(3 if i < 3 else 7)]
        dom, exact = fold_points(pts, 2)
        assert exact
        assert len(dom.pieces) == 2
        assert dom.card() == 3 * 3 + 3 * 7

    def test_too_many_pieces_over_approximates(self):
        # inner bound oscillates: not piecewise-affine in <= 2 pieces
        pts = [(i, j) for i in range(8) for j in range((i * 37 % 5) + 1)]
        dom, exact = fold_points(pts, 2, max_pieces=2)
        assert not exact
        # over-approximation is a superset
        assert all(dom.contains(p) for p in pts)


class TestOverApproximation:
    def test_holes_flagged(self):
        pts = [(i,) for i in range(0, 10, 2)]  # stride-2: holes
        dom, exact = fold_points(pts, 1)
        assert not exact
        assert all(dom.contains(p) for p in pts)

    def test_duplicate_points_flagged(self):
        f = DomainFolder(1)
        f.add((0,))
        f.add((0,))
        f.add((1,))
        dom, exact = f.fold()
        assert not exact  # count mismatch reveals re-execution
        assert f.count == 3

    def test_data_dependent_bound(self):
        # "random" inner bounds: bounding box, never exact
        import random

        rng = random.Random(7)
        pts = []
        for i in range(6):
            for j in range(rng.randint(1, 5)):
                pts.append((i, j))
        dom, exact = fold_points(pts, 2, max_pieces=2)
        assert all(dom.contains(p) for p in pts)


class TestProperties:
    @given(
        n=st.integers(1, 6),
        m=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_rectangles_always_exact(self, n, m):
        pts = [(i, j) for i in range(n) for j in range(m)]
        dom, exact = fold_points(pts, 2)
        assert exact and dom.card() == n * m

    @given(
        pts=st.sets(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_soundness_fold_is_superset(self, pts):
        """The folded domain always contains every observed point, and
        when flagged exact it contains nothing else."""
        dom, exact = fold_points(sorted(pts), 2)
        for p in pts:
            assert dom.contains(p)
        if exact:
            assert dom.card() == len(pts)
