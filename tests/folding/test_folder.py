"""End-to-end folding tests reproducing the paper's Table 2.

The ``bpnn_layerforward`` kernel of Fig. 6 is profiled with the exact
bounds of the paper (``0 <= cj < 15``, ``0 <= ck < 42``) and the folded
output is checked against Table 2:

=========  =======================  =============================
dep        polyhedron               label expression
=========  =======================  =============================
I1 -> I2   0<=cj<15, 0<=ck<42       cj' = cj, ck' = ck
I2 -> I4   0<=cj<15, 0<=ck<42       cj' = cj, ck' = ck
I4 -> I4   0<=cj<15, 1<=ck<42       cj' = cj, ck' = ck - 1
=========  =======================  =============================

(in our lowering the I1 -> I2 address flow goes through an explicit
address ``add``, which SCEV recognition then removes, and I2 -> I4
through the ``fmul`` -- the checks below follow those chains).
"""

import pytest

from repro.ddg import REG_FLOW
from repro.folding import FoldingSink
from repro.pipeline import profile_control, profile_ddg
from repro.poly import AffineExpr
from repro.workloads.examples_paper import layerforward_kernel


@pytest.fixture(scope="module")
def folded():
    spec = layerforward_kernel(n1=41, n2=15)  # Table 2's exact bounds
    control = profile_control(spec)
    sink = FoldingSink()
    profile_ddg(spec, control, sink=sink)
    return spec, sink.finalize()


def uid_of(program, func, opcode, n=0):
    hits = sorted(
        ins.uid
        for fn, bb, ins in program.all_instrs()
        if fn.name == func and ins.opcode == opcode
    )
    return hits[n]


class TestTable2:
    def test_i4_i4_recurrence(self, folded):
        """Row 3 of Table 2: the sum recurrence."""
        spec, ddg = folded
        fadd = uid_of(spec.program, "bpnn_layerforward", "fadd")
        deps = ddg.deps_between_uids(fadd, fadd, REG_FLOW)
        assert len(deps) == 1
        dep = deps[0]
        assert dep.exact
        # domain: 0 <= cj < 15, 1 <= ck < 42
        dom = dep.domain
        assert dom.card() == 15 * 41
        assert dom.contains((0, 1)) and dom.contains((14, 41))
        assert not dom.contains((0, 0))       # first iteration has no source
        assert not dom.contains((15, 1))
        # relation: (cj, ck) -> (cj, ck - 1)
        fn = dep.relation.pieces[0][1]
        assert fn[0] == AffineExpr((1, 0), 0)
        assert fn[1] == AffineExpr((0, 1), -1)

    def test_same_iteration_flow_into_fmul(self, folded):
        """Row 2 analogue: I2/I3 feed the multiply at distance (0,0)."""
        spec, ddg = folded
        fmul = uid_of(spec.program, "bpnn_layerforward", "fmul")
        incoming = [
            d
            for d in ddg.deps.values()
            if d.key.dst[0] == fmul and d.key.kind == REG_FLOW
        ]
        assert len(incoming) == 2  # tmp2 and tmp3
        for dep in incoming:
            assert dep.exact
            assert dep.domain.card() == 15 * 42
            fn = dep.relation.pieces[0][1]
            assert fn[0] == AffineExpr((1, 0), 0)
            assert fn[1] == AffineExpr((0, 1), 0)

    def test_row_pointer_chain_i1_i2(self, folded):
        """Row 1: I1's row pointer flows into I2's address add."""
        spec, ddg = folded
        i1 = uid_of(spec.program, "bpnn_layerforward", "load", 0)
        consumers = [
            d
            for d in ddg.deps.values()
            if d.key.src[0] == i1 and d.key.kind == REG_FLOW
        ]
        assert consumers
        for dep in consumers:
            assert dep.exact
            fn = dep.relation.pieces[0][1]
            assert fn[0] == AffineExpr((1, 0), 0)
            assert fn[1] == AffineExpr((0, 1), 0)


class TestStatementFolding:
    def test_inner_statement_domain(self, folded):
        spec, ddg = folded
        fadd = uid_of(spec.program, "bpnn_layerforward", "fadd")
        (fs,) = ddg.statements_of_uid(fadd)
        assert fs.exact
        assert fs.count == 15 * 42
        assert fs.domain.card() == 15 * 42
        assert fs.depth == 2

    def test_store_domain_is_1d(self, folded):
        spec, ddg = folded
        st = uid_of(spec.program, "bpnn_layerforward", "store")
        (fs,) = ddg.statements_of_uid(st)
        assert fs.exact and fs.depth == 1
        assert fs.count == 15

    def test_access_functions_recognized(self, folded):
        """Memory labels fold to affine access functions: l1[k] has
        stride 1 in ck and stride 0 in cj."""
        spec, ddg = folded
        i3 = uid_of(spec.program, "bpnn_layerforward", "load", 2)
        (fs,) = ddg.statements_of_uid(i3)
        assert fs.label_fn is not None
        (addr,) = fs.label_fn.exprs
        assert addr.coeffs[0] == 0   # invariant in cj
        assert addr.coeffs[1] == 1   # stride 1 in ck

    def test_conn_access_function_strides(self, folded):
        """conn[k][j]: stride (row length) in ck, stride 1 in cj."""
        spec, ddg = folded
        i2 = uid_of(spec.program, "bpnn_layerforward", "load", 1)
        (fs,) = ddg.statements_of_uid(i2)
        assert fs.label_fn is not None
        (addr,) = fs.label_fn.exprs
        assert addr.coeffs[0] == 1    # +1 word per cj
        assert addr.coeffs[1] == 17   # n2 + 2 words per ck row

    def test_squash_context_statements(self, folded):
        """squash's instructions live in their own calling context with
        a 1-D domain (one instance per cj)."""
        spec, ddg = folded
        fexp = uid_of(spec.program, "squash", "fexp")
        stmts = ddg.statements_of_uid(fexp)
        assert len(stmts) == 1
        assert stmts[0].depth == 1
        assert stmts[0].count == 15


class TestSCEV:
    def test_induction_increments_are_scev(self, folded):
        """I5/I8 (the k/j increments) fold to affine values."""
        spec, ddg = folded
        scev_uids = {k[0] for k in ddg.scev_statements()}
        adds = [
            ins
            for fn, bb, ins in spec.program.all_instrs()
            if fn.name == "bpnn_layerforward" and ins.opcode == "add"
        ]
        assert adds
        # every integer add in the kernel is address/induction work
        assert {i.uid for i in adds} <= scev_uids

    def test_loads_never_scev(self, folded):
        spec, ddg = folded
        scev_uids = {k[0] for k in ddg.scev_statements()}
        loads = {
            ins.uid
            for fn, bb, ins in spec.program.all_instrs()
            if ins.opcode == "load"
        }
        assert not (loads & scev_uids)

    def test_transform_deps_exclude_scev_chains(self, folded):
        spec, ddg = folded
        scev = ddg.scev_statements()
        for dep in ddg.transform_deps():
            assert dep.key.src not in scev
            assert dep.key.dst not in scev

    def test_float_recurrence_survives_scev_filter(self, folded):
        spec, ddg = folded
        fadd = uid_of(spec.program, "bpnn_layerforward", "fadd")
        kept = [
            d
            for d in ddg.transform_deps()
            if d.key.src[0] == fadd and d.key.dst[0] == fadd
        ]
        assert len(kept) == 1


class TestAffMetric:
    def test_kernel_is_fully_affine(self, folded):
        spec, ddg = folded
        assert ddg.dyn_ops() > 0
        assert ddg.affine_ops() == ddg.dyn_ops()
