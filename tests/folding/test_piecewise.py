"""Piecewise-affine label folder tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.folding.piecewise import PiecewiseVectorFolder


def fold(points_values, dim, out_dim=1, max_pieces=6):
    f = PiecewiseVectorFolder(dim, out_dim, max_pieces)
    for p, v in points_values:
        f.add(p, v)
    return f


class TestSinglePiece:
    def test_affine_stream(self):
        f = fold([((i,), (3 * i + 1,)) for i in range(10)], 1)
        pieces = f.result()
        assert pieces is not None and len(pieces) == 1
        dom, fn, cnt = pieces[0]
        assert cnt == 10
        assert fn.eval_int((4,)) == (13,)

    def test_empty(self):
        f = PiecewiseVectorFolder(1, 1)
        assert f.result() is None


class TestMultiPiece:
    def test_boundary_clamp(self):
        """max(i-1, 0): two affine pieces."""
        data = [((i,), (max(i - 1, 0),)) for i in range(12)]
        pieces = fold(data, 1).result()
        assert pieces is not None
        assert len(pieces) == 2
        # each recorded point is reproduced by its own piece
        for (p, v) in data:
            assert any(
                dom.contains(p) and fn.eval_int(p) == v
                for dom, fn, _ in pieces
            )

    def test_2d_clamp_stays_two_pieces(self):
        """i*C + max(j-1, 0): the 2-D assignment must not fragment."""
        data = []
        for i in range(6):
            for j in range(6):
                data.append(((i, j), (10 * i + max(j - 1, 0),)))
        pieces = fold(data, 2).result()
        assert pieces is not None
        assert len(pieces) == 2

    def test_budget_exhaustion_fails(self):
        # pseudo-random values: no small piecewise-affine structure
        data = [((i,), ((i * 37) % 11,)) for i in range(40)]
        f = fold(data, 1, max_pieces=4)
        assert f.result() is None
        assert f.failed

    def test_piece_counts_sum(self):
        data = [((i,), (max(i - 3, 0),)) for i in range(10)]
        pieces = fold(data, 1).result()
        assert sum(cnt for _, _, cnt in pieces) == 10


class TestVectorLabels:
    def test_dependence_style_labels(self):
        # (i, j) -> (i, j-1) producer coordinates
        data = [((i, j), (i, j - 1)) for i in range(4) for j in range(1, 4)]
        pieces = fold(data, 2, out_dim=2).result()
        assert len(pieces) == 1
        _, fn, _ = pieces[0]
        assert fn.eval_int((2, 3)) == (2, 2)

    def test_mixed_component_split(self):
        # first component affine, second clamped: pieces split on both
        data = [((i,), (i, max(i - 2, 0))) for i in range(8)]
        pieces = fold(data, 1, out_dim=2).result()
        assert pieces is not None
        assert len(pieces) == 2


class TestProperty:
    @given(
        breaks=st.lists(st.integers(1, 19), min_size=0, max_size=2, unique=True),
        slope=st.integers(-3, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_piecewise_linear_streams_fold(self, breaks, slope):
        """Any <=3-piece piecewise-affine stream folds exactly."""
        bs = sorted(breaks)

        def value(i):
            v = 0
            for b in bs:
                v += max(i - b, 0)
            return slope * i + v

        data = [((i,), (value(i),)) for i in range(20)]
        pieces = fold(data, 1, max_pieces=6).result()
        assert pieces is not None
        for p, v in data:
            assert any(
                dom.contains(p) and fn.eval_int(p) == v
                for dom, fn, _ in pieces
            )
