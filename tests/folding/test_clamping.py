"""Clamping tests (Fig. 1's "relevance scalability clamping" knob)."""


from repro.folding import FoldingSink
from repro.pipeline import profile_control, profile_ddg
from repro.workloads.examples_paper import layerforward_kernel


def run(clamp):
    spec = layerforward_kernel(n1=20, n2=10)
    control = profile_control(spec)
    sink = FoldingSink(clamp=clamp)
    profile_ddg(spec, control, sink=sink)
    return sink, sink.finalize()


class TestClamping:
    def test_disabled_by_default(self):
        sink, folded = run(clamp=None)
        assert sink.clamped_points == 0
        assert folded.affine_ops() == folded.dyn_ops()

    def test_counts_stay_honest(self):
        full_sink, full = run(clamp=None)
        sink, folded = run(clamp=16)
        assert sink.clamped_points > 0
        # dynamic tallies unchanged: clamping drops detail, not ops
        assert folded.dyn_ops() == full.dyn_ops()

    def test_clamped_streams_marked_inexact(self):
        sink, folded = run(clamp=16)
        big = [fs for fs in folded.statements.values() if fs.count > 16]
        assert big
        assert all(not fs.exact for fs in big)
        small = [fs for fs in folded.statements.values() if fs.count <= 16]
        assert any(fs.exact for fs in small)

    def test_clamped_deps_conservative(self):
        sink, folded = run(clamp=16)
        clamped = [d for d in folded.deps.values() if d.count > 17]
        assert clamped
        assert all(d.relation is None for d in clamped)

    def test_affinity_degrades_gracefully(self):
        _, folded = run(clamp=16)
        aff = folded.affine_ops() / folded.dyn_ops()
        assert 0.0 <= aff < 1.0
