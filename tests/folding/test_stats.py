"""Compression-statistics tests (paper section 5 scalability claims)."""

import pytest

from repro.folding import FoldingSink, compression_stats, scheduler_statement_count
from repro.pipeline import profile_control, profile_ddg
from repro.workloads.examples_paper import layerforward_kernel


@pytest.fixture(scope="module")
def folded():
    spec = layerforward_kernel(n1=41, n2=15)
    control = profile_control(spec)
    sink = FoldingSink()
    profile_ddg(spec, control, sink=sink)
    return sink.finalize()


class TestCompressionStats:
    def test_counts_consistent(self, folded):
        cs = compression_stats(folded)
        assert cs.dynamic_instances == folded.dyn_ops()
        assert cs.statements == folded.stmt_count()
        assert cs.dep_relations == len(folded.deps)
        assert cs.exact_statements == cs.statements  # kernel is affine
        assert cs.scev_statements == len(folded.scev_statements())

    def test_vertex_compression_substantial(self, folded):
        cs = compression_stats(folded)
        # 15x42 iterations through ~20 statements: > 100x fold
        assert cs.vertex_ratio > 100

    def test_edge_compression_substantial(self, folded):
        cs = compression_stats(folded)
        assert cs.edge_ratio > 50
        assert cs.affine_relations == cs.dep_relations

    def test_summary_text(self, folded):
        s = compression_stats(folded).summary()
        assert "->" in s and "statements" in s

    def test_scheduler_statement_count(self, folded):
        n = scheduler_statement_count(folded)
        assert 0 < n < folded.stmt_count()  # SCEVs removed

    def test_scale_invariance_of_statement_count(self):
        """The folded size depends on the *code*, not the trip counts --
        the essence of the paper's scalability argument."""
        sizes = []
        for n1, n2 in ((5, 4), (41, 15)):
            spec = layerforward_kernel(n1=n1, n2=n2)
            control = profile_control(spec)
            sink = FoldingSink()
            profile_ddg(spec, control, sink=sink)
            f = sink.finalize()
            sizes.append((f.stmt_count(), len(f.deps), f.dyn_ops()))
        (s1, d1, o1), (s2, d2, o2) = sizes
        assert o2 > 5 * o1            # much more dynamic work...
        assert s1 == s2               # ...same folded statements
        assert d1 == d2               # ...same folded relations
