"""Under-approximation tests (the paper's section 10 future-work item,
implemented here as fold_under)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.folding import DomainFolder, fold_under


def folder_of(points, dim):
    f = DomainFolder(dim)
    for p in points:
        f.add(p)
    return f


class TestFoldUnder:
    def test_exact_domain_unchanged(self):
        pts = [(i, j) for i in range(4) for j in range(i + 1)]
        f = folder_of(pts, 2)
        under = fold_under(f)
        assert under.card() == len(pts)
        assert all(under.contains(p) for p in pts)

    def test_holes_dropped_not_widened(self):
        # rows 0..3 contiguous, row 4 has a hole
        pts = [(i, j) for i in range(4) for j in range(3)]
        pts += [(4, 0), (4, 2)]
        f = folder_of(pts, 2)
        under = fold_under(f)
        # subset of the observed points...
        for p in under.points():
            assert p in set(pts)
        # ...retaining the clean rows
        assert under.card() >= 12

    def test_irregular_bounds_keep_some(self):
        import random

        rng = random.Random(3)
        pts = []
        for i in range(8):
            for j in range(rng.randint(1, 6)):
                pts.append((i, j))
        f = folder_of(pts, 2)
        under = fold_under(f)
        observed = set(pts)
        for p in under.points():
            assert p in observed

    def test_empty(self):
        f = folder_of([], 2)
        assert fold_under(f).is_empty()

    def test_1d(self):
        f = folder_of([(i,) for i in range(5)], 1)
        under = fold_under(f)
        assert under.card() == 5

    @given(
        pts=st.sets(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_under_subset_over_superset(self, pts):
        """fold_under ⊆ points ⊆ fold."""
        f = folder_of(sorted(pts), 2)
        over, _ = f.fold()
        under = fold_under(f)
        observed = set(pts)
        for p in under.points():
            assert p in observed
        for p in observed:
            assert over.contains(p)
