"""Event-stream ordering invariants (what instrumentation relies on)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instrumentation, ProgramBuilder, run_program


class OrderChecker(Instrumentation):
    """Asserts the structural invariants of the raw event stream."""

    def __init__(self):
        self.call_stack = []
        self.current = None
        self.errors = []
        self.events = 0

    def on_call(self, e):
        self.events += 1
        if e.caller is not None and e.caller != self.current:
            self.errors.append(f"call from {e.caller} but current {self.current}")
        self.call_stack.append((e.callee, e.frame_id))
        self.current = e.callee

    def on_return(self, e):
        self.events += 1
        if not self.call_stack:
            self.errors.append("return with empty stack")
            return
        callee, fid = self.call_stack.pop()
        if callee != e.callee or fid != e.frame_id:
            self.errors.append(
                f"return {e.callee}/{e.frame_id} mismatches call {callee}/{fid}"
            )
        self.current = e.caller

    def on_jump(self, e):
        self.events += 1
        if e.src_bb is not None and e.func != self.current:
            self.errors.append(
                f"jump in {e.func} while current is {self.current}"
            )

    def on_instr(self, instr, frame_id, value, addr):
        if not self.call_stack or frame_id != self.call_stack[-1][1]:
            self.errors.append("instr outside the top frame")


def check(program, args=(), memory=None):
    oc = OrderChecker()
    run_program(program, args=args, memory=memory, observers=[oc])
    assert not oc.errors, oc.errors[:3]
    # only main's synthetic frame remains
    assert len(oc.call_stack) == 1
    return oc


class TestOrdering:
    def test_nested_calls(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 3) as i:
                f.call("a", [])
            f.halt()
        with pb.function("a", []) as f:
            f.call("b", [])
            f.ret()
        with pb.function("b", []) as f:
            f.add(1, 1)
            f.ret()
        check(pb.build())

    def test_recursion(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.call("r", [0])
            f.halt()
        with pb.function("r", ["n"]) as f:
            with f.if_then("lt", "n", 5):
                f.call("r", [f.add("n", 1)])
            f.ret()
        check(pb.build())

    @given(
        depth=st.integers(1, 3),
        trips=st.integers(1, 3),
        calls=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_nests(self, depth, trips, calls):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            ctxs = []
            for _ in range(depth):
                c = f.loop(0, trips)
                c.__enter__()
                ctxs.append(c)
            if calls:
                f.call("leaf", [])
            else:
                f.add(1, 1)
            for c in reversed(ctxs):
                c.__exit__(None, None, None)
            f.halt()
        with pb.function("leaf", []) as f:
            f.add(2, 2)
            f.ret()
        oc = check(pb.build())
        assert oc.events > 0
