"""Program/state JSON codec: round-trips must preserve fingerprints."""

import json

import pytest

from repro.isa import Memory, ProgramBuilder
from repro.isa.fingerprint import fingerprint_program, fingerprint_state
from repro.isa.progjson import (
    PROGJSON_VERSION,
    decode_program,
    decode_state,
    encode_program,
    encode_state,
    spec_from_documents,
)


def build_sample():
    pb = ProgramBuilder("sample")
    with pb.function("scale", ["p", "k"]) as f:
        v = f.load("p", index=0)
        f.store("p", f.mul(v, "k"), index=0)
        f.ret()
    with pb.function("main", ["a", "n"]) as f:
        with f.loop(0, "n") as i:
            v = f.load("a", index=i)
            f.store("a", f.add(v, 1.5), index=i)
        f.call("scale", ["a", 3])
        f.halt()
    return pb.build()


def build_state():
    memory = Memory()
    base = memory.alloc(8, 0)
    for k in range(8):
        memory.store(base + k, k * 2)
    return [base, 8], memory


class TestProgramRoundTrip:
    def test_fingerprint_preserved(self):
        program = build_sample()
        doc = encode_program(program)
        # force a real serialization boundary, like the HTTP body
        wire = json.loads(json.dumps(doc))
        decoded = decode_program(wire)
        assert fingerprint_program(decoded) == fingerprint_program(program)

    def test_structure_preserved(self):
        program = build_sample()
        decoded = decode_program(encode_program(program))
        assert decoded.name == program.name
        assert decoded.main == program.main
        assert set(decoded.functions) == set(program.functions)
        for name, fn in program.functions.items():
            dfn = decoded.functions[name]
            assert dfn.params == fn.params
            assert dfn.entry == fn.entry
            assert list(dfn.blocks) == list(fn.blocks)

    def test_executes_identically(self):
        from repro.isa import run_program

        program = build_sample()
        decoded = decode_program(encode_program(program))
        args1, mem1 = build_state()
        args2, mem2 = build_state()
        out1 = run_program(program, args1, mem1, [], fuel=100_000)
        out2 = run_program(decoded, args2, mem2, [], fuel=100_000)
        assert mem1.state_items() == mem2.state_items()
        assert type(out1) is type(out2)

    def test_wrong_version_rejected(self):
        doc = encode_program(build_sample())
        doc["progjson"] = PROGJSON_VERSION + 1
        with pytest.raises(ValueError, match="unsupported progjson"):
            decode_program(doc)

    def test_duplicate_block_rejected(self):
        doc = encode_program(build_sample())
        blocks = doc["functions"][0]["blocks"]
        blocks.append(dict(blocks[0]))
        with pytest.raises(ValueError, match="duplicate block"):
            decode_program(doc)

    def test_malformed_program_fails_validation(self):
        doc = encode_program(build_sample())
        doc["functions"][0]["blocks"][0]["term"] = {
            "op": "jump",
            "target": "no_such_block",
        }
        with pytest.raises(Exception):
            decode_program(doc)


class TestStateRoundTrip:
    def test_fingerprint_preserved(self):
        args, memory = build_state()
        doc = json.loads(json.dumps(encode_state(args, memory)))
        args2, memory2 = decode_state(doc)
        assert args2 == args
        assert fingerprint_state(args2, memory2) == fingerprint_state(
            args, memory
        )

    def test_fresh_memory_per_decode(self):
        args, memory = build_state()
        doc = encode_state(args, memory)
        _, m1 = decode_state(doc)
        _, m2 = decode_state(doc)
        m1.store(next(iter(m1.state_items()[1]))[0], 999)
        assert m1.state_items() != m2.state_items()

    def test_reserved_address_rejected(self):
        with pytest.raises(ValueError, match="reserved address"):
            decode_state({"args": [], "next": 16, "words": [[3, 1]]})

    def test_frontier_covers_all_words(self):
        _, memory = decode_state(
            {"args": [], "next": 16, "words": [[100, 7]]}
        )
        # a fresh alloc must not collide with decoded words
        addr = memory.alloc(1, 0)
        assert addr > 100


class TestSpecFromDocuments:
    def test_spec_keys_match_original(self):
        """An inline submission must cache/dedup exactly like the same
        program submitted as a registered workload would."""
        from repro.pipeline import ProgramSpec
        from repro.store import keys_for_spec

        program = build_sample()
        args, memory = build_state()
        native = ProgramSpec(
            name="sample",
            program=program,
            make_state=build_state,
            description="native",
        )
        inline = spec_from_documents(
            encode_program(program),
            encode_state(args, memory),
            name="sample",
        )
        opts = dict(
            engine="fast",
            fuel=50_000_000,
            max_pieces=6,
            clamp=None,
            track_anti_output=True,
            build_schedule_tree=True,
        )
        assert keys_for_spec(native, **opts) == keys_for_spec(
            inline, **opts
        )

    def test_state_doc_optional(self):
        pb = ProgramBuilder("selfcontained")
        with pb.function("main", []) as f:
            f.set("x", 1)
            f.halt()
        spec = spec_from_documents(encode_program(pb.build()), None)
        args, memory = spec.make_state()
        assert args == []
        assert memory.state_items()[1] == []

    def test_invalid_program_raises_at_boundary(self):
        with pytest.raises(Exception):
            spec_from_documents({"progjson": PROGJSON_VERSION}, None)
