"""Unit tests for the VM: arithmetic, memory, calls, events, stats."""

import pytest

from repro.isa import (
    Instrumentation,
    Memory,
    ProgramBuilder,
    VMError,
    run_program,
)


def build_arith(op, a, b):
    pb = ProgramBuilder("t")
    with pb.function("main", []) as f:
        r = f._binop(op, a, b, "r")
        f.ret(r)
    return pb.build()


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,a,b,expect",
        [
            ("add", 2, 3, 5),
            ("sub", 2, 3, -1),
            ("mul", -4, 3, -12),
            ("div", 7, 2, 3),
            ("div", -7, 2, -3),  # C truncation toward zero
            ("div", 7, -2, -3),
            ("mod", 7, 2, 1),
            ("mod", -7, 2, -1),  # C semantics: sign of dividend
            ("and", 6, 3, 2),
            ("or", 6, 3, 7),
            ("xor", 6, 3, 5),
            ("shl", 3, 2, 12),
            ("shr", 12, 2, 3),
            ("cmplt", 1, 2, 1),
            ("cmpge", 1, 2, 0),
            ("fadd", 1.5, 2.0, 3.5),
            ("fmul", 1.5, 2.0, 3.0),
            ("fdiv", 3.0, 2.0, 1.5),
            ("fmin", 3.0, 2.0, 2.0),
            ("fmax", 3.0, 2.0, 3.0),
        ],
    )
    def test_binops(self, op, a, b, expect):
        result, _ = run_program(build_arith(op, a, b))
        assert result == expect

    def test_div_by_zero(self):
        with pytest.raises(VMError):
            run_program(build_arith("div", 1, 0))

    def test_unops(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            a = f.fsqrt(16.0)
            b = f.fneg(a)
            c = f.fabs(b)
            d = f.ftoi(c)
            f.ret(d)
        result, _ = run_program(pb.build())
        assert result == 4


class TestMemory:
    def test_load_store(self):
        mem = Memory()
        base = mem.alloc(4)
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            with f.loop(0, 4) as i:
                f.store("A", f.mul(i, i), index=i)
            acc = f.const(0, "acc")
            with f.loop(0, 4) as i:
                v = f.load("A", index=i)
                f.set(acc, f.add(acc, v))
            f.ret(acc)
        result, stats = run_program(pb.build(), args=[base], memory=mem)
        assert result == 0 + 1 + 4 + 9
        assert mem.read_array(base, 4) == [0, 1, 4, 9]
        assert stats.mem_ops == 8

    def test_fault_on_unmapped(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            v = f.load(0)
            f.ret(v)
        with pytest.raises(Exception):
            run_program(pb.build())

    def test_alloc_array(self):
        mem = Memory()
        base = mem.alloc_array([5, 6, 7])
        assert mem.read_array(base, 3) == [5, 6, 7]


class TestCalls:
    def test_simple_call(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            r = f.call("square", [7], want_result=True)
            f.ret(r)
        with pb.function("square", ["x"]) as f:
            f.ret(f.mul("x", "x"))
        result, stats = run_program(pb.build())
        assert result == 49
        assert stats.dyn_calls == 1

    def test_recursion_factorial(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            r = f.call("fact", [6], want_result=True)
            f.ret(r)
        with pb.function("fact", ["n"]) as f:
            h = f.if_begin("le", "n", 1)
            f.ret(1)
            f._start(f.fn.blocks[h.join])
            m = f.sub("n", 1)
            r = f.call("fact", [m], want_result=True)
            f.ret(f.mul("n", r))
        result, _ = run_program(pb.build())
        assert result == 720

    def test_register_isolation_across_frames(self):
        # callee writing a register named like the caller's must not leak
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            x = f.set(f.fresh_reg("x"), 10)
            f.call("clobber", [])
            f.ret(x)
        with pb.function("clobber", []) as f:
            f.set("%x1", 999)
            f.ret()
        result, _ = run_program(pb.build())
        assert result == 10


class TestControlFlow:
    def test_if_then_else(self):
        pb = ProgramBuilder("t")
        with pb.function("main", ["x"]) as f:
            out = f.set(f.fresh_reg("out"), 0)
            h = f.if_begin("lt", "x", 10)
            f.set(out, 1)
            f.if_else(h)
            f.set(out, 2)
            f.if_end(h)
            f.ret(out)
        assert run_program(pb.build(), args=[5])[0] == 1
        assert run_program(pb.build(), args=[15])[0] == 2

    def test_bottom_test_loop_runs_once(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            count = f.set(f.fresh_reg("n"), 0)
            with f.loop(5, 3, bottom_test=True) as i:  # 5 < 3 false, do-while
                f.set(count, f.add(count, 1))
            f.ret(count)
        assert run_program(pb.build())[0] == 1

    def test_while_loop(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            x = f.set(f.fresh_reg("x"), 1)
            w = f.while_begin()
            f.while_cond(w, "lt", x, 100)
            f.set(x, f.mul(x, 2))
            f.while_end(w)
            f.ret(x)
        assert run_program(pb.build())[0] == 128

    def test_triangular_loop(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            n = f.set(f.fresh_reg("n"), 0)
            with f.loop(0, 5) as i:
                with f.loop(0, i, rel="le") as j:
                    f.set(n, f.add(n, 1))
            f.ret(n)
        assert run_program(pb.build())[0] == 15

    def test_fuel_exhaustion(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            w = f.while_begin()
            f.while_cond(w, "eq", 0, 0)
            f.while_end(w)
            f.halt()
        with pytest.raises(VMError, match="fuel"):
            run_program(pb.build(), fuel=1000)


class TestEvents:
    def test_event_stream_shape(self):
        events = []

        class Rec(Instrumentation):
            def on_jump(self, e):
                events.append(("J", e.func, e.src_bb, e.dst_bb))

            def on_call(self, e):
                events.append(("C", e.caller, e.callee))

            def on_return(self, e):
                events.append(("R", e.callee, e.caller))

        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.call("leaf", [])
            f.halt()
        with pb.function("leaf", []) as f:
            f.ret()
        run_program(pb.build(), observers=[Rec()])
        assert ("C", None, "main") in events
        assert ("C", "main", "leaf") in events
        assert ("R", "leaf", "main") in events

    def test_instr_events_carry_addresses(self):
        seen = []

        class Rec(Instrumentation):
            def on_instr(self, instr, frame_id, value, addr):
                if instr.is_mem:
                    seen.append((instr.opcode, addr, value))

        mem = Memory()
        base = mem.alloc(2)
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            f.store("A", 42, index=1)
            v = f.load("A", index=1)
            f.ret(v)
        run_program(pb.build(), args=[base], memory=mem, observers=[Rec()])
        assert seen == [("store", base + 1, 42), ("load", base + 1, 42)]

    def test_stats(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 10) as i:
                f.fadd(1.0, 2.0)
            f.halt()
        _, stats = run_program(pb.build())
        assert stats.fp_ops == 10
        assert stats.dyn_branches == 11  # 10 taken + 1 exit test
        assert stats.total_ops > 20


class TestValidation:
    def test_unterminated_function_rejected(self):
        pb = ProgramBuilder("t")
        with pytest.raises(ValueError, match="not terminated"):
            with pb.function("main", []) as f:
                f.add(1, 2)

    def test_unknown_callee_rejected(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.call("ghost", [])
            f.halt()
        with pytest.raises(ValueError, match="unknown function"):
            pb.build()

    def test_arity_mismatch(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.call("g", [1, 2], want_result=False)
            f.halt()
        with pb.function("g", ["x"]) as f:
            f.ret()
        with pytest.raises(ValueError, match="arity"):
            pb.build()

    def test_undefined_register_read(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.emit("add", ["%undef", 1], dest="%y")
            f.ret("%y")
        with pytest.raises(VMError, match="undefined register"):
            run_program(pb.build())
