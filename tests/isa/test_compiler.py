"""Tests for the block-compiled fast engine (repro.isa.compiler).

The fast engine must be observationally identical to the reference
per-instruction interpreter: same results, same statistics (including
the per-opcode tally and fuel accounting), same instruction event
stream -- just delivered block-at-a-time through ``on_block``.
"""

import pytest

from repro.isa import (
    Instrumentation,
    Memory,
    ProgramBuilder,
    VMError,
    run_program,
)
from repro.isa.compiler import compile_program


def build_mixed():
    """Loops, calls, memory and floats in one program."""
    pb = ProgramBuilder("t")
    with pb.function("main", ["A"]) as f:
        with f.loop(0, 4) as i:
            f.store("A", f.mul(i, i), index=i)
        acc = f.const(0, "acc")
        with f.loop(0, 4) as i:
            v = f.load("A", index=i)
            f.set(acc, f.add(acc, v))
        r = f.call("half", [acc], want_result=True)
        f.ret(r)
    with pb.function("half", ["x"]) as f:
        f.ret(f.ftoi(f.fmul(f.itof("x"), 0.5)))
    return pb.build()


def run_both(build, **kwargs):
    mem_f = Memory()
    mem_r = Memory()
    prog = build()
    fast = run_program(
        prog, args=[mem_f.alloc(4)], memory=mem_f, engine="fast", **kwargs
    )
    ref = run_program(
        prog, args=[mem_r.alloc(4)], memory=mem_r, engine="reference", **kwargs
    )
    return fast, ref


class Blocks(Instrumentation):
    """Records raw on_block deliveries."""

    def __init__(self):
        self.blocks = []

    def on_block(self, instrs, frame_id, values, addrs):
        self.blocks.append((instrs, frame_id, list(values), list(addrs)))


class Instrs(Instrumentation):
    """Records per-instruction events (fast engine uses the unbatching
    base on_block for this observer)."""

    def __init__(self):
        self.events = []

    def on_instr(self, instr, frame_id, value, addr):
        self.events.append((instr, frame_id, value, addr))


class TestParity:
    def test_result_and_stats_identical(self):
        (rf, sf), (rr, sr) = run_both(build_mixed)
        assert rf == rr == 7  # (0+1+4+9) // 2
        assert sf.dyn_instrs == sr.dyn_instrs
        assert sf.dyn_branches == sr.dyn_branches
        assert sf.dyn_calls == sr.dyn_calls
        assert sf.mem_ops == sr.mem_ops
        assert sf.fp_ops == sr.fp_ops
        assert dict(sf.per_opcode) == dict(sr.per_opcode)
        assert sum(sf.per_opcode.values()) == sf.dyn_instrs

    def test_instr_event_stream_identical(self):
        prog = build_mixed()
        streams = []
        for engine in ("fast", "reference"):
            mem = Memory()
            rec = Instrs()
            run_program(
                prog,
                args=[mem.alloc(4)],
                memory=mem,
                observers=[rec],
                engine=engine,
            )
            streams.append(rec.events)
        assert streams[0] == streams[1]


class TestOnBlock:
    def test_blocks_cover_instr_stream(self):
        prog = build_mixed()
        mem = Memory()
        blocks = Blocks()
        instrs = Instrs()
        run_program(
            prog,
            args=[mem.alloc(4)],
            memory=mem,
            observers=[blocks, instrs],
            engine="fast",
        )
        assert blocks.blocks  # batched delivery actually happened
        unbatched = []
        for block, frame_id, values, addrs in blocks.blocks:
            assert len(block) == len(values) == len(addrs)
            for i, ins in enumerate(block):
                unbatched.append((ins, frame_id, values[i], addrs[i]))
        assert unbatched == instrs.events

    def test_silent_observer_gets_no_instr_traffic(self):
        hits = []

        class ControlOnly(Instrumentation):
            def on_jump(self, event):
                hits.append(event)

            def on_block(self, instrs, frame_id, values, addrs):
                raise AssertionError("should never be called")

        # overriding on_block opts in; this class overrides it only to
        # prove the fast engine *would* call it -- so use a separate
        # class that overrides neither hook.
        class Silent(Instrumentation):
            pass

        mem = Memory()
        run_program(
            build_mixed(),
            args=[mem.alloc(4)],
            memory=mem,
            observers=[Silent()],
            engine="fast",
        )


class TestCompileCache:
    def test_cached_on_program(self):
        prog = build_mixed()
        c1 = compile_program(prog)
        c2 = compile_program(prog)
        assert c1 is c2
        assert compile_program(build_mixed()) is not c1

    def test_compiled_shape(self):
        prog = build_mixed()
        compiled = compile_program(prog)
        assert set(compiled.funcs) == {"main", "half"}
        for fname, fn in prog.functions.items():
            cf = compiled.funcs[fname]
            assert set(cf.blocks) == set(fn.blocks)
            assert cf.entry is cf.blocks[fn.entry]
            for bname, bb in fn.blocks.items():
                cb = cf.blocks[bname]
                assert cb.n_instrs == len(bb.instrs)
                assert len(cb.steps) == cb.n_instrs


class TestFaults:
    def build_infinite(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            w = f.while_begin()
            f.while_cond(w, "eq", 0, 0)
            f.while_end(w)
            f.halt()
        return pb.build()

    def test_fuel_accounting_identical(self):
        prog = self.build_infinite()
        for fuel in (10, 100, 1000):
            for engine in ("fast", "reference"):
                with pytest.raises(VMError, match="fuel"):
                    run_program(prog, fuel=fuel, engine=engine)

    def test_exact_fuel_boundary(self):
        prog = build_mixed()
        mem = Memory()
        _, stats = run_program(
            prog, args=[mem.alloc(4)], memory=mem, engine="reference"
        )
        # the fuel check runs once more at the final block entry, so
        # the minimal sufficient fuel is total events + 1 -- the exact
        # same boundary on both engines
        need = stats.dyn_instrs + stats.dyn_branches + 1
        for engine in ("fast", "reference"):
            mem = Memory()
            run_program(
                prog,
                args=[mem.alloc(4)],
                memory=mem,
                engine=engine,
                fuel=need,
            )
            mem = Memory()
            with pytest.raises(VMError, match="fuel"):
                run_program(
                    prog,
                    args=[mem.alloc(4)],
                    memory=mem,
                    engine=engine,
                    fuel=need - 1,
                )

    def build_undef(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            a = f.add(1, 2)
            b = f.add(a, "%undef")
            c = f.add(b, 1)
            f.ret(c)
        return pb.build()

    def test_undefined_register(self):
        for engine in ("fast", "reference"):
            with pytest.raises(VMError, match="undefined register"):
                run_program(self.build_undef(), engine=engine)

    def test_partial_block_delivery_on_fault(self):
        # the fault happens mid-block; the instructions that *did*
        # execute must still be counted and delivered
        prog = self.build_undef()
        blocks = Blocks()
        try:
            run_program(prog, observers=[blocks], engine="fast")
        except VMError:
            pass
        delivered = [ins for blk in blocks.blocks for ins in blk[0]]
        assert len(delivered) == 1  # only the first add completed
        assert delivered[0].opcode == "add"

    def test_div_by_zero_mid_block(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            a = f.add(1, 2)
            b = f.div(a, 0)
            f.ret(b)
        prog = pb.build()
        for engine in ("fast", "reference"):
            with pytest.raises(VMError):
                run_program(prog, engine=engine)
