"""Frontend-lowering tests: block shapes, control sugar, debug info."""

import pytest

from repro.isa import Jump, CondBr, ProgramBuilder, run_program


class TestLoopLowering:
    def test_top_test_shape(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 4) as i:
                f.add(i, 0)
            f.halt()
        fn = pb.build().function("main")
        headers = [b for b in fn.blocks.values() if "head" in b.name]
        assert len(headers) == 1
        term = headers[0].terminator
        assert isinstance(term, CondBr)
        # body jumps back to the header (the back-edge)
        bodies = [b for b in fn.blocks.values() if "body" in b.name]
        assert isinstance(bodies[0].terminator, Jump)
        assert bodies[0].terminator.target == headers[0].name

    def test_bottom_test_shape(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 4, bottom_test=True) as i:
                f.add(i, 0)
            f.halt()
        fn = pb.build().function("main")
        bodies = [b for b in fn.blocks.values() if "body" in b.name]
        assert isinstance(bodies[0].terminator, CondBr)
        assert bodies[0].terminator.taken == bodies[0].name  # self back-edge

    def test_step_and_relation(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            count = f.set(f.fresh_reg("c"), 0)
            with f.loop(10, 0, rel="gt", step=-2) as i:
                f.add(count, 1, into=count)
            f.ret(count)
        assert run_program(pb.build())[0] == 5  # 10, 8, 6, 4, 2


class TestIfLowering:
    def test_then_only_join(self):
        pb = ProgramBuilder("t")
        with pb.function("main", ["x"]) as f:
            out = f.set(f.fresh_reg("o"), 0)
            with f.if_then("gt", "x", 0):
                f.set(out, 1)
            f.ret(out)
        prog = pb.build()
        assert run_program(prog, args=[5])[0] == 1
        assert run_program(prog, args=[-5])[0] == 0

    def test_nested_if_else(self):
        pb = ProgramBuilder("t")
        with pb.function("main", ["x"]) as f:
            out = f.set(f.fresh_reg("o"), 0)
            h = f.if_begin("gt", "x", 0)
            h2 = f.if_begin("gt", "x", 10)
            f.set(out, 2)
            f.if_else(h2)
            f.set(out, 1)
            f.if_end(h2)
            f.if_else(h)
            f.set(out, -1)
            f.if_end(h)
            f.ret(out)
        prog = pb.build()
        assert run_program(prog, args=[20])[0] == 2
        assert run_program(prog, args=[5])[0] == 1
        assert run_program(prog, args=[-1])[0] == -1


class TestDebugInfo:
    def test_at_line_applies_to_following_instrs(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.at_line(42)
            f.add(1, 2)
            f.at_line(None)
            f.add(3, 4)
            f.halt()
        fn = pb.build().function("main")
        lines = [i.src_line for i in fn.blocks["entry"].instrs]
        assert lines == [42, None]

    def test_loop_line_on_iv_updates(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 2, line=7) as i:
                f.add(i, 0)
            f.halt()
        prog = pb.build()
        lined = [
            i for _, _, i in prog.all_instrs() if i.src_line == 7
        ]
        assert len(lined) >= 2  # init mov + increment add

    def test_src_loop_depth_recorded(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 2) as i:
                with f.loop(0, 2) as j:
                    f.add(i, j)
            with f.loop(0, 2) as k:
                f.add(k, 0)
            f.halt()
        assert pb.build().function("main").src_loop_depth == 2


class TestMisc:
    def test_goto_new_block_splits(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.add(1, 1)
            f.goto_new_block()
            f.add(2, 2)
            f.halt()
        fn = pb.build().function("main")
        assert len(fn.blocks) == 2

    def test_addr_scale_emits_mul(self):
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            f.load("A", index=3, scale=4, offset=2)
            f.halt()
        prog = pb.build()
        ops = [i.opcode for _, _, i in prog.all_instrs()]
        assert "mul" in ops and "add" in ops and "load" in ops

    def test_want_result_binds_register(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            r = f.call("g", [], want_result=True)
            f.ret(r)
        with pb.function("g", []) as f:
            f.ret(f.add(40, 2))
        assert run_program(pb.build())[0] == 42

    def test_emitting_after_terminator_rejected(self):
        pb = ProgramBuilder("t")
        with pytest.raises(ValueError, match="terminated"):
            with pb.function("main", []) as f:
                f.halt()
                f.add(1, 1)

    def test_duplicate_function_rejected(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.halt()
        with pytest.raises(ValueError, match="duplicate function"):
            with pb.function("main", []) as f:
                f.halt()
