"""Chrome trace-event export and the schema validator CI relies on."""

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace_document,
    validate_chrome_trace,
    write_chrome_trace,
)


def _traced():
    tr = Tracer()
    with tr.span("analyze", cat="pipeline", workload="nn"):
        with tr.span("instr1", cat="stage") as sp:
            sp.count("dyn_instrs", 42)
        with tr.span("instr2_fold", cat="stage"):
            pass
    return tr


class TestExport:
    def test_document_shape(self):
        doc = chrome_trace_document(_traced().roots, workload="nn")
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["workload"] == "nn"
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert set(phases) <= {"X", "M"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == [
            "analyze", "instr1", "instr2_fold",
        ]
        # ts is rebased to the earliest span
        assert xs[0]["ts"] == 0.0
        # counters and args land in the event args
        assert xs[1]["args"]["dyn_instrs"] == 42
        assert xs[0]["args"]["workload"] == "nn"

    def test_single_pid_and_stable_tids(self):
        doc = chrome_trace_document(_traced().roots, pid=7)
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {7}
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "MainThread" in names

    def test_accepts_exported_dicts(self):
        tr = _traced()
        doc_live = chrome_trace_document(tr.roots, pid=1)
        doc_dicts = chrome_trace_document(tr.to_dicts(), pid=1)
        assert doc_live == doc_dicts

    def test_write_validates_and_is_json(self, tmp_path):
        out = tmp_path / "trace.json"
        write_chrome_trace(str(out), _traced().roots, workload="nn")
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == 3


class TestValidator:
    def _valid(self):
        return chrome_trace_document(_traced().roots, pid=1)

    def test_accepts_valid_document(self):
        assert validate_chrome_trace(self._valid()) == 3

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_empty_events(self):
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_missing_phase(self):
        doc = self._valid()
        del doc["traceEvents"][0]["ph"]
        with pytest.raises(ValueError, match="no phase"):
            validate_chrome_trace(doc)

    def test_rejects_missing_pid(self):
        doc = self._valid()
        del doc["traceEvents"][0]["pid"]
        with pytest.raises(ValueError, match="pid"):
            validate_chrome_trace(doc)

    def test_rejects_multiple_pids(self):
        doc = self._valid()
        doc["traceEvents"][-1]["pid"] = 99
        with pytest.raises(ValueError, match="one stable pid"):
            validate_chrome_trace(doc)

    def test_rejects_backwards_ts(self):
        doc = self._valid()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        xs[-1]["ts"] = -5.0
        with pytest.raises(ValueError, match="invalid ts|backwards"):
            validate_chrome_trace(doc)

    def test_rejects_negative_dur(self):
        doc = self._valid()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        xs[0]["dur"] = -1.0
        with pytest.raises(ValueError, match="invalid dur"):
            validate_chrome_trace(doc)

    def test_rejects_unmatched_be_pairs(self):
        doc = self._valid()
        doc["traceEvents"].append(
            {"name": "open", "ph": "B", "ts": 9e9, "pid": 1, "tid": 1}
        )
        with pytest.raises(ValueError, match="unclosed 'B'"):
            validate_chrome_trace(doc)
        doc["traceEvents"][-1] = {
            "name": "stray", "ph": "E", "ts": 9e9, "pid": 1, "tid": 1,
        }
        with pytest.raises(ValueError, match="no open 'B'"):
            validate_chrome_trace(doc)

    def test_matched_be_pairs_count_as_timed(self):
        doc = self._valid()
        last = max(
            e["ts"] for e in doc["traceEvents"] if e["ph"] == "X"
        )
        doc["traceEvents"] += [
            {"name": "p", "ph": "B", "ts": last + 1, "pid": 1, "tid": 1},
            {"name": "p", "ph": "E", "ts": last + 2, "pid": 1, "tid": 1},
        ]
        assert validate_chrome_trace(doc) == 4

    def test_rejects_all_metadata(self):
        doc = self._valid()
        doc["traceEvents"] = [
            e for e in doc["traceEvents"] if e["ph"] == "M"
        ]
        with pytest.raises(ValueError, match="no timed events"):
            validate_chrome_trace(doc)
