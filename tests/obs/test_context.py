"""TraceContext: ids, traceparent wire format, span round-trips.

The distributed-tracing contract starts here: every front door mints
or adopts a :class:`~repro.obs.context.TraceContext`, serializes it as
a W3C-style ``traceparent`` header (HTTP hops) or a plain dict
(procpool ctl pipes, fork pools), and every :class:`~repro.obs.Tracer`
root parents under it.  These tests pin the format so a daemon from
one build stitches with a router from another.
"""

import pytest

from repro.obs import Span, Tracer
from repro.obs.context import (
    TraceContext,
    new_span_id,
    new_trace_context,
    new_trace_id,
)


class TestIds:
    def test_trace_id_is_32_lower_hex(self):
        tid = new_trace_id()
        assert len(tid) == 32
        assert tid == tid.lower()
        int(tid, 16)

    def test_span_id_is_16_lower_hex(self):
        sid = new_span_id()
        assert len(sid) == 16
        int(sid, 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(256)}) == 256
        assert len({new_span_id() for _ in range(256)}) == 256

    def test_ids_never_all_zero(self):
        # all-zero ids are invalid per the traceparent spec; the
        # generator coerces them rather than emitting an unparseable
        # context (probabilistically untestable directly, so pin the
        # parse-side rejection instead)
        assert TraceContext.from_traceparent(
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01"
        ) is None
        assert TraceContext.from_traceparent(
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01"
        ) is None


class TestTraceparent:
    def test_round_trip(self):
        ctx = new_trace_context()
        back = TraceContext.from_traceparent(ctx.to_traceparent())
        assert back == ctx

    def test_unsampled_round_trip(self):
        ctx = new_trace_context(sampled=False)
        header = ctx.to_traceparent()
        assert header.endswith("-00")
        back = TraceContext.from_traceparent(header)
        assert back is not None
        assert back.sampled is False

    def test_header_shape(self):
        header = new_trace_context().to_traceparent()
        version, trace_id, span_id, flags = header.split("-")
        assert version == "00"
        assert len(trace_id) == 32
        assert len(span_id) == 16
        assert flags == "01"

    def test_case_and_whitespace_tolerant(self):
        ctx = new_trace_context()
        header = "  " + ctx.to_traceparent().upper() + "  "
        assert TraceContext.from_traceparent(header) == ctx

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            42,
            "",
            "garbage",
            "00-short-span-01",
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",
            "00-" + "1" * 32 + "-" + "2" * 16,  # missing flags
            "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",  # bad version
        ],
    )
    def test_malformed_returns_none(self, bad):
        # a malformed inbound header must never fail a request --
        # front doors fall back to minting a fresh context
        assert TraceContext.from_traceparent(bad) is None


class TestDictCodec:
    def test_as_dict_from_dict_round_trip(self):
        ctx = new_trace_context()
        assert TraceContext.from_dict(ctx.as_dict()) == ctx

    def test_child_shares_trace_new_span(self):
        ctx = new_trace_context()
        kid = ctx.child()
        assert kid.trace_id == ctx.trace_id
        assert kid.span_id != ctx.span_id


class TestSpanRoundTrip:
    def test_span_to_dict_from_dict_lossless(self):
        ctx = new_trace_context()
        tracer = Tracer(context=ctx)
        with tracer.span("outer", cat="test", detail="x"):
            with tracer.span("inner", cat="test"):
                pass
        tracer.close()
        for doc in tracer.to_dicts():
            back = Span.from_dict(doc)
            assert back.to_dict() == doc

    def test_remote_parent_linkage_survives_round_trip(self):
        # the executor serializes spans over the procpool evt pipe as
        # dicts; the stitcher must still see the remote parent
        ctx = new_trace_context()
        tracer = Tracer(context=ctx)
        with tracer.span("analyze", cat="pipeline"):
            pass
        tracer.close()
        (root_doc,) = tracer.to_dicts()
        assert root_doc["trace_id"] == ctx.trace_id
        assert root_doc["parent_id"] == ctx.span_id
        root = Span.from_dict(root_doc)
        assert root.trace_id == ctx.trace_id
        assert root.parent_id == ctx.span_id

    def test_nested_spans_parent_locally(self):
        ctx = new_trace_context()
        tracer = Tracer(context=ctx)
        with tracer.span("outer", cat="test"):
            with tracer.span("inner", cat="test"):
                pass
        tracer.close()
        (outer_doc,) = tracer.to_dicts()
        (inner_doc,) = outer_doc["children"]
        assert inner_doc["trace_id"] == ctx.trace_id
        assert inner_doc["parent_id"] == outer_doc["span_id"]

    def test_current_context_tracks_innermost_open_span(self):
        ctx = new_trace_context()
        tracer = Tracer(context=ctx)
        assert tracer.current_context() == ctx
        with tracer.span("outer", cat="test"):
            inner_ctx = tracer.current_context()
            assert inner_ctx is not None
            assert inner_ctx.trace_id == ctx.trace_id
            assert inner_ctx.span_id != ctx.span_id
        tracer.close()

    def test_disabled_tracer_has_no_context(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored", cat="test"):
            assert tracer.current_context() is None
