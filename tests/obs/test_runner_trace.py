"""Suite runner observability: traces cross the pool, hot column."""

from repro.obs import Span, render_self_flamegraph, validate_chrome_trace
from repro.obs.chrometrace import chrome_trace_document
from repro.runner import WorkloadResult, render_suite_table, run_suite


class TestTraceAcrossThePool:
    def test_inline_run_carries_span_dicts(self):
        (res,) = run_suite(["nn"], jobs=1)
        assert res.ok
        assert res.trace, "expected an exported span forest"
        root = Span.from_dict(res.trace[0])
        assert root.name == "workload"
        assert root.args["workload"] == "nn"
        analyze = root.find("analyze")
        assert analyze is not None
        assert analyze.find("instr1") is not None

    def test_pool_run_carries_span_dicts(self):
        results = run_suite(["nn", "nw"], jobs=2)
        for res in results:
            assert res.ok
            root = Span.from_dict(res.trace[0])
            assert root.args["workload"] == res.name
            # stage split in the result matches the shipped spans
            analyze = root.find("analyze")
            s1 = {c.name: c for c in analyze.children}["instr1"]
            assert abs((s1.t1 - analyze.t0) - res.t_instr1) < 1e-6

    def test_exported_trace_feeds_the_exporters(self):
        (res,) = run_suite(["nn"], jobs=1)
        doc = chrome_trace_document(res.trace, workload=res.name)
        assert validate_chrome_trace(doc) > 0
        svg = render_self_flamegraph(res.trace)
        assert "<svg" in svg and "analyze" in svg


class TestHotColumn:
    def test_hot_phase_picks_dominant_stage(self):
        r = WorkloadResult(
            name="x", ok=True,
            t_instr1=0.1, t_instr2_fold=0.7, t_feedback=0.2,
        )
        assert r.hot_phase() == "fold"
        r.t_instr1 = 1.0
        assert r.hot_phase() == "instr1"

    def test_hot_phase_dash_when_untimed(self):
        assert WorkloadResult(name="x", ok=True).hot_phase() == "-"

    def test_suite_table_has_hot_column(self):
        (res,) = run_suite(["nn"], jobs=1)
        table = render_suite_table([res])
        header, row = table.splitlines()[:2]
        assert "hot" in header
        assert res.hot_phase() != "-"
        assert res.hot_phase() in row
