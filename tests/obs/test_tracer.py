"""Tracer core: nesting, threads, no-op mode, counters, round-trips."""

import threading

from repro.obs import NULL_TRACER, Span, Tracer
from repro.obs.tracer import _NULL_SPAN


class TestNesting:
    def test_children_nest_under_parent(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("a"):
                with tr.span("a.a"):
                    pass
            with tr.span("b"):
                pass
        (root,) = tr.roots
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a.a"]

    def test_timing_is_monotonic_and_contained(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("child"):
                pass
        (root,) = tr.roots
        child = root.children[0]
        assert root.t0 <= child.t0 <= child.t1 <= root.t1
        assert root.duration >= child.duration >= 0.0

    def test_sibling_roots(self):
        tr = Tracer()
        with tr.span("first"):
            pass
        with tr.span("second"):
            pass
        assert [r.name for r in tr.roots] == ["first", "second"]
        assert tr.total_seconds() >= 0.0

    def test_current_and_count(self):
        tr = Tracer()
        assert tr.current() is None
        with tr.span("root") as sp:
            assert tr.current() is sp
            tr.count("events", 3)
            tr.count("events")
        assert tr.current() is None
        assert tr.roots[0].counters == {"events": 4}

    def test_exception_unwinds_spans(self):
        tr = Tracer()
        try:
            with tr.span("root"):
                with tr.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tr.current() is None
        (root,) = tr.roots
        assert root.t1 >= root.t0
        assert root.children[0].t1 >= root.children[0].t0

    def test_find_and_walk(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("a"):
                with tr.span("needle"):
                    pass
        (root,) = tr.roots
        assert root.find("needle").name == "needle"
        assert root.find("absent") is None
        assert [s.name for _, s in root.walk()] == ["root", "a", "needle"]


class TestThreads:
    def test_each_thread_builds_its_own_root(self):
        tr = Tracer()
        barrier = threading.Barrier(3)

        def work(label):
            barrier.wait()
            with tr.span(label):
                with tr.span(f"{label}.child"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(r.name for r in tr.roots) == ["t0", "t1", "t2"]
        for root in tr.roots:
            assert len(root.children) == 1
            # the thread name was recorded on the span
            assert root.tid

    def test_main_thread_unaffected_by_worker_spans(self):
        tr = Tracer()
        with tr.span("main_root"):
            t = threading.Thread(target=lambda: tr.span("w").__enter__())
            t.start()
            t.join()
            assert tr.current().name == "main_root"


class TestDisabled:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything") as sp:
            sp.count("x")
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.total_seconds() == 0.0

    def test_disabled_span_is_the_shared_singleton(self):
        tr = Tracer(enabled=False)
        assert tr.span("a") is tr.span("b") is _NULL_SPAN
        tr.count("ignored", 5)  # must not raise

    def test_disabled_ignores_memory_flag(self):
        tr = Tracer(enabled=False, memory=True)
        assert tr.memory is False


class TestDecorator:
    def test_wrap_names_and_times(self):
        tr = Tracer()

        @tr.wrap("custom.name")
        def f(x):
            return x + 1

        @tr.wrap()
        def g():
            return f(1)

        with tr.span("root"):
            assert g() == 2
        (root,) = tr.roots
        (gspan,) = root.children
        assert gspan.name == g.__qualname__  # wrap() defaults to qualname
        assert gspan.cat == "func"
        assert [c.name for c in gspan.children] == ["custom.name"]

    def test_wrap_on_disabled_tracer_passes_through(self):
        tr = Tracer(enabled=False)

        @tr.wrap("never")
        def f():
            return 42

        assert f() == 42
        assert tr.roots == []


class TestMemory:
    def test_memory_mode_samples_deltas(self):
        tr = Tracer(memory=True)
        try:
            with tr.span("root"):
                blob = ["x"] * 50_000  # noqa: F841 - keep alive in span
            (root,) = tr.roots
            assert root.mem_delta is not None
            assert root.mem_peak is not None
            assert root.mem_peak >= 0
        finally:
            tr.close()

    def test_default_memory_mode_does_not_start_tracemalloc(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        tr = Tracer(memory=True)
        try:
            with tr.span("root"):
                pass
            assert not tracemalloc.is_tracing()
        finally:
            tr.close()

    def test_tracemalloc_mode_owns_and_stops_the_allocation_tracer(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        tr = Tracer(memory="tracemalloc")
        try:
            assert tracemalloc.is_tracing()
            with tr.span("root"):
                blob = ["x"] * 50_000  # noqa: F841 - keep alive in span
            (root,) = tr.roots
            # exact allocation bytes: the 50k-slot list alone is
            # hundreds of KiB, far above any tracer bookkeeping
            assert root.mem_peak >= 50_000 * 8
        finally:
            tr.close()
        assert not tracemalloc.is_tracing()

    def test_close_is_idempotent(self):
        tr = Tracer(memory=True)
        tr.close()
        tr.close()

    def test_on_phase_callback_fires_for_shallow_spans(self):
        seen = []
        tr = Tracer(on_phase=seen.append)
        with tr.span("root"):
            with tr.span("stage"):
                with tr.span("deep"):
                    pass
        assert seen == ["root", "stage"]

    def test_on_phase_exceptions_are_swallowed(self):
        def bad(name):
            raise ValueError("never propagate")

        tr = Tracer(on_phase=bad)
        with tr.span("root"):
            pass
        assert tr.roots[0].name == "root"


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        tr = Tracer()
        with tr.span("root", cat="pipeline", workload="nn") as sp:
            sp.count("blocks", 7)
            with tr.span("child"):
                pass
        (root,) = tr.roots
        root.mem_delta = 123
        root.mem_peak = 456
        clone = Span.from_dict(root.to_dict())
        assert clone.name == "root"
        assert clone.cat == "pipeline"
        assert clone.args == {"workload": "nn"}
        assert clone.counters == {"blocks": 7}
        assert clone.mem_delta == 123 and clone.mem_peak == 456
        assert clone.t0 == root.t0 and clone.t1 == root.t1
        assert [c.name for c in clone.children] == ["child"]
        assert clone.to_dict() == root.to_dict()

    def test_self_and_child_seconds(self):
        root = Span("root", t0=0.0)
        root.t1 = 1.0
        a = Span("a", t0=0.1)
        a.t1 = 0.4
        b = Span("b", t0=0.4)
        b.t1 = 0.6
        root.children = [a, b]
        assert root.child_seconds() == (0.3 + 0.2)
        assert abs(root.self_seconds() - 0.5) < 1e-12
