"""The pipeline's span tree and the StageTimings derived from it."""

import pytest

from repro.obs import NULL_TRACER, TraceObserver, Tracer
from repro.pipeline import StageTimings, analyze
from repro.store import ArtifactStore
from repro.workloads import all_workloads

EPS = 1e-6


@pytest.fixture(scope="module")
def traced_nn():
    tracer = Tracer()
    result = analyze(all_workloads()["nn"](), tracer=tracer)
    return tracer, result


class TestSpanTree:
    def test_root_has_stage_children_in_order(self, traced_nn):
        tracer, _ = traced_nn
        (root,) = tracer.roots
        assert root.name == "analyze"
        assert root.args["workload"] == "nn"
        assert [c.name for c in root.children] == [
            "instr1", "instr2_fold", "feedback",
        ]

    def test_result_carries_the_root_span(self, traced_nn):
        tracer, result = traced_nn
        assert result.trace is tracer.roots[0]

    def test_sub_phases_present(self, traced_nn):
        _, result = traced_nn
        root = result.trace
        for name in (
            "stage1.execute", "stage1.forests", "stage1.rcs",
            "stage2.execute", "fold.finalize", "fold.statements",
            "fold.deps", "feedback.forest", "feedback.plan",
        ):
            assert root.find(name) is not None, name

    def test_children_sum_within_parent(self, traced_nn):
        """The drift invariant: no child outlives its parent, and
        children's total never exceeds the parent's duration."""
        _, result = traced_nn
        for _, span in result.trace.walk():
            assert span.t1 >= span.t0
            for child in span.children:
                assert child.t0 >= span.t0 - EPS
                assert child.t1 <= span.t1 + EPS
            assert span.child_seconds() <= span.duration + EPS

    def test_default_analyze_is_traced_too(self):
        result = analyze(all_workloads()["nn"]())
        assert result.trace is not None
        assert result.trace.name == "analyze"
        assert result.timings.total > 0.0


class TestStageTimingsFromSpans:
    def test_parts_sum_exactly_to_root(self, traced_nn):
        _, result = traced_nn
        t = result.timings
        assert t.total == pytest.approx(result.trace.duration, abs=EPS)
        # glue-inclusive: each stage covers up to its span's end
        assert t.instr1 > 0 and t.instr2_fold > 0 and t.feedback > 0

    def test_missing_stage_spans_raise(self):
        tr = Tracer()
        with tr.span("analyze") as root:
            with tr.span("unrelated"):
                pass
        with pytest.raises(ValueError, match="instr1"):
            StageTimings.from_span_tree(root)

    def test_null_tracer_yields_zero_timings_and_no_trace(self):
        result = analyze(all_workloads()["nn"](), tracer=NULL_TRACER)
        assert result.trace is None
        assert result.timings.total == 0.0
        assert result.timings.cache_hit is False


class TestDeepTrace:
    def test_trace_observer_attaches_execution_counters(self):
        tracer = Tracer()
        result = analyze(
            all_workloads()["nn"](),
            tracer=tracer,
            extra_observers=[TraceObserver(tracer)],
        )
        s1 = result.trace.find("stage1.execute")
        s2 = result.trace.find("stage2.execute")
        assert s1.counters["blocks"] > 0
        assert s1.counters["dyn_instrs"] == result.control.stats.dyn_instrs
        assert s2.counters["dyn_instrs"] > 0


class TestWarmCache:
    def test_cache_flags_and_cache_spans(self, tmp_path):
        spec_factory = all_workloads()["nn"]
        store = ArtifactStore(str(tmp_path))
        cold = analyze(spec_factory(), store=store)
        assert not cold.timings.cache_hit
        assert cold.trace.find("stage1.put") is not None
        warm_tracer = Tracer()
        warm = analyze(spec_factory(), store=store, tracer=warm_tracer)
        assert warm.timings.stage1_cached
        assert warm.timings.stage2_cached
        assert warm.timings.cache_hit
        root = warm.trace
        assert root.find("stage1.load") is not None
        # a warm hit never executes, so no execute spans
        assert root.find("stage1.execute") is None
        assert root.find("stage2.execute") is None
        # and the derived timings still sum to the root
        assert warm.timings.total == pytest.approx(
            root.duration, abs=EPS
        )

    def test_identical_results_cold_vs_warm(self, tmp_path):
        spec_factory = all_workloads()["nn"]
        store = ArtifactStore(str(tmp_path))
        cold = analyze(spec_factory(), store=store)
        warm = analyze(spec_factory(), store=store)
        assert cold.folded.stmt_count() == warm.folded.stmt_count()
        assert len(cold.folded.deps) == len(warm.folded.deps)
