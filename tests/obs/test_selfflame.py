"""Self-flamegraph: span forest -> schedule tree -> SVG/text."""

from repro.obs import (
    Span,
    Tracer,
    render_self_flamegraph,
    render_span_text,
    spans_to_schedule_tree,
)


def _span(name, t0, t1, children=(), counters=None, mem_delta=None):
    sp = Span(name, t0=t0)
    sp.t1 = t1
    sp.children = list(children)
    sp.counters = dict(counters or {})
    sp.mem_delta = mem_delta
    return sp


class TestScheduleTree:
    def test_weights_are_microseconds(self):
        root = _span("analyze", 0.0, 0.010, [_span("instr1", 0.0, 0.004)])
        tree = spans_to_schedule_tree([root])
        node = tree.root.children["analyze"]
        assert node.element == "analyze"
        assert node.weight == 10_000
        child = node.children["instr1"]
        assert child.weight == 4_000
        # self time = parent minus consumed children
        assert node.self_weight == 6_000

    def test_same_named_siblings_merge(self):
        root = _span(
            "analyze", 0.0, 0.010,
            [_span("load", 0.0, 0.002), _span("load", 0.002, 0.005)],
        )
        tree = spans_to_schedule_tree([root])
        load = tree.root.children["analyze"].children["load"]
        assert load.visits == 2
        assert load.weight == 5_000

    def test_zero_duration_span_keeps_minimum_weight(self):
        tree = spans_to_schedule_tree([_span("instant", 1.0, 1.0)])
        assert tree.root.children["instant"].weight == 1


class TestRenderers:
    def test_svg_contains_span_names_and_annotation(self):
        tr = Tracer()
        with tr.span("analyze"):
            with tr.span("instr1"):
                pass
        svg = render_self_flamegraph(tr.roots, title="self test")
        assert svg.startswith("<svg") or "<svg" in svg
        assert "analyze" in svg and "instr1" in svg
        assert "us self" in svg
        assert "self test" in svg

    def test_text_rendering_shows_counters_and_memory(self):
        root = _span(
            "analyze", 0.0, 0.010,
            [_span("x", 0.0, 0.005, counters={"blocks": 3},
                   mem_delta=2048)],
        )
        text = render_span_text([root])
        assert "analyze" in text
        assert "100.0%" in text
        assert "blocks=3" in text
        assert "+2.00KiB" in text

    def test_text_min_fraction_filters_children_not_roots(self):
        root = _span(
            "analyze", 0.0, 1.0, [_span("tiny", 0.0, 0.0001)]
        )
        text = render_span_text([root], min_fraction=0.01)
        assert "analyze" in text
        assert "tiny" not in text

    def test_accepts_exported_dicts(self):
        root = _span("analyze", 0.0, 0.010)
        assert "analyze" in render_span_text([root.to_dict()])
        tree = spans_to_schedule_tree([root.to_dict()])
        assert tree.root.children["analyze"].element == "analyze"
