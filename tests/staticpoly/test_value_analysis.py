"""Unit tests for the static analyzer's value analysis internals."""


from repro.isa import ProgramBuilder
from repro.staticpoly.analyzer import UNKNOWN, _FunctionAnalysis, _is_simple_leaf


def analysis_of(build):
    pb = ProgramBuilder("t")
    with pb.function("main", ["A", "n"]) as f:
        build(f)
        f.halt()
    prog = pb.build()
    return prog, _FunctionAnalysis(prog, prog.function("main"))


class TestValueClasses:
    def test_params_are_symbols_with_roots(self):
        _, fa = analysis_of(lambda f: f.add(1, 1))
        v = fa.value_of("A")
        assert v is not UNKNOWN
        assert "A" in v.roots

    def test_constants(self):
        def body(f):
            f.const(5, hint="c")

        _, fa = analysis_of(body)
        reg = "%c1"
        v = fa.value_of(reg)
        assert v is not UNKNOWN and v.is_const() and v.const == 5

    def test_affine_combination(self):
        captured = {}

        def body(f):
            t = f.add(f.mul("n", 3), 7)
            captured["t"] = t

        _, fa = analysis_of(body)
        v = fa.value_of(captured["t"])
        assert v is not UNKNOWN
        assert v.terms == {"param:n": 3}
        assert v.const == 7

    def test_load_is_unknown(self):
        captured = {}

        def body(f):
            captured["v"] = f.load("A", index=0)

        _, fa = analysis_of(body)
        assert fa.value_of(captured["v"]) is UNKNOWN

    def test_var_times_var_unknown(self):
        captured = {}

        def body(f):
            captured["v"] = f.mul("n", "n")

        _, fa = analysis_of(body)
        assert fa.value_of(captured["v"]) is UNKNOWN

    def test_induction_variable_recognized(self):
        captured = {}

        def body(f):
            with f.loop(0, "n") as i:
                captured["iv"] = i
                f.add(i, 0)

        _, fa = analysis_of(body)
        v = fa.value_of(captured["iv"])
        assert v is not UNKNOWN
        assert any(k.startswith("iv:") for k in v.terms)

    def test_address_affine_in_iv(self):
        captured = {}

        def body(f):
            with f.loop(0, "n") as i:
                a, off = f.addr("A", index=i, scale=2)
                captured["a"] = a

        _, fa = analysis_of(body)
        v = fa.value_of(captured["a"])
        assert v is not UNKNOWN
        assert "A" in v.roots
        assert any(c == 2 for c in v.terms.values())

    def test_multi_def_non_iv_unknown(self):
        captured = {}

        def body(f):
            r = f.set(f.fresh_reg("r"), 1)
            f.set(r, 2)  # two defs, not the IV pattern
            captured["r"] = r

        _, fa = analysis_of(body)
        assert fa.value_of(captured["r"]) is UNKNOWN

    def test_immediates(self):
        _, fa = analysis_of(lambda f: f.add(1, 1))
        assert fa.value_of(7).const == 7
        assert fa.value_of(1.5) is UNKNOWN  # floats are not index math


class TestSimpleLeaf:
    def test_pure_math_leaf(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.halt()
        with pb.function("exp_like", ["x"]) as f:
            f.ret(f.fexp("x"))
        prog = pb.build()
        assert _is_simple_leaf(prog.function("exp_like"))

    def test_memory_disqualifies(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.halt()
        with pb.function("reader", ["p"]) as f:
            f.ret(f.load("p", offset=0))
        prog = pb.build()
        assert not _is_simple_leaf(prog.function("reader"))

    def test_loop_disqualifies(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.halt()
        with pb.function("loopy", ["n"]) as f:
            acc = f.set(f.fresh_reg("a"), 0.0)
            with f.loop(0, "n") as i:
                f.fadd(acc, 1.0, into=acc)
            f.ret(acc)
        prog = pb.build()
        assert not _is_simple_leaf(prog.function("loopy"))
