"""Static-analyzer (mini-Polly) tests: each failure code triggered by
the program feature named in the paper's Table 5 legend."""


from repro.isa import ProgramBuilder
from repro.staticpoly import analyze_static
from repro.workloads.examples_paper import layerforward_kernel


def build(body, params=("A", "B", "C")):
    pb = ProgramBuilder("t")
    with pb.function("main", list(params)) as f:
        body(f)
        f.halt()
    return pb.build()


class TestModelableKernels:
    def test_clean_affine_nest_models(self):
        def body(f):
            with f.loop(0, 16) as i:
                v = f.load("A", index=i)
                f.store("B", v, index=i)

        report = analyze_static(build(body), ["main"])
        assert report.whole_region_modelable, report.reasons
        assert report.max_modelable_depth() == 1

    def test_2d_affine_nest_models(self):
        def body(f):
            with f.loop(0, 8) as i:
                with f.loop(0, 8) as j:
                    idx = f.add(f.mul(i, 8), j)
                    f.store("B", f.load("A", index=idx), index=idx)

        report = analyze_static(build(body), ["main"])
        assert report.whole_region_modelable
        assert report.max_modelable_depth() == 2

    def test_triangular_bound_models(self):
        # bound is an affine function of an outer IV: fine statically
        def body(f):
            with f.loop(0, 8) as i:
                with f.loop(0, i, rel="le") as j:
                    f.store("B", 0.0, index=f.add(i, j))

        report = analyze_static(build(body), ["main"])
        assert report.whole_region_modelable


class TestFailureReasons:
    def test_R_unhandled_call(self):
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            with f.loop(0, 8) as i:
                f.call("helper", ["A", i])
            f.halt()
        with pb.function("helper", ["A", "i"]) as f:
            f.store("A", 1.0, index="i")
            f.ret()
        report = analyze_static(pb.build(), ["main"])
        assert "R" in report.reasons

    def test_simple_math_leaf_tolerated(self):
        """Polly handles calls to exp/sqrt-like leaves (paper text)."""
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            with f.loop(0, 8) as i:
                v = f.load("A", index=i)
                r = f.call("myexp", [v], want_result=True)
                f.store("A", r, index=i)
            f.halt()
        with pb.function("myexp", ["x"]) as f:
            f.ret(f.fexp("x"))
        report = analyze_static(pb.build(), ["main"])
        assert "R" not in report.reasons

    def test_C_break_in_loop(self):
        # a while loop with a conditional break: two exit edges
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            w = f.while_begin()
            v = f.load("A", index=0)
            f.while_cond(w, "lt", v, 100)
            h = f.if_begin("gt", f.load("A", index=1), 10)
            f.break_to(w.exit)
            f._start(f.fn.blocks[h.join])
            f.store("A", 1.0, index=0)
            f.while_end(w)
            f.halt()
        report = analyze_static(pb.build(), ["main"])
        assert "C" in report.reasons

    def test_B_data_dependent_bound(self):
        def body(f):
            n = f.load("A", index=0)   # bound loaded from memory
            with f.loop(0, n) as i:
                f.store("B", 0.0, index=i)

        report = analyze_static(build(body), ["main"])
        # statically the bound is unknown: B; dynamically it folds fine
        assert "B" in report.reasons

    def test_F_pointer_indirection(self):
        def body(f):
            with f.loop(0, 8) as i:
                row = f.load("A", index=i)       # row pointer
                v = f.load(row, index=i)         # indirection
                f.store("B", v, index=i)

        report = analyze_static(build(body), ["main"])
        assert "F" in report.reasons

    def test_P_non_invariant_base(self):
        # pointer chasing: base loaded inside the loop then dereferenced
        def body(f):
            ptr = f.set(f.fresh_reg("p"), "A")
            w = f.while_begin()
            f.while_cond(w, "ne", ptr, 0)
            nxt = f.load(ptr, offset=0)
            f.set(ptr, nxt)
            f.while_end(w)

        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            body(f)
            f.halt()
        report = analyze_static(pb.build(), ["main"])
        assert "P" in report.reasons

    def test_A_many_arrays_with_writes(self):
        def body(f):
            with f.loop(0, 8) as i:
                a = f.load("A", index=i)
                b = f.load("B", index=i)
                c = f.load("C", index=i)
                f.store("D", f.fadd(f.fadd(a, b), c), index=i)
                f.store("E", a, index=i)

        report = analyze_static(
            build(body, params=("A", "B", "C", "D", "E")), ["main"]
        )
        assert "A" in report.reasons

    def test_two_arrays_within_check_budget(self):
        def body(f):
            with f.loop(0, 8) as i:
                f.store("B", f.load("A", index=i), index=i)

        report = analyze_static(build(body), ["main"])
        assert "A" not in report.reasons


class TestPaperContrast:
    def test_layerforward_static_vs_dynamic(self):
        """The paper's headline: the row-pointer indirection defeats
        static modeling (F) while the dynamic pipeline folds the same
        accesses into exact affine functions."""
        spec = layerforward_kernel(n1=5, n2=4)
        report = analyze_static(spec.program, ["bpnn_layerforward"])
        assert "F" in report.reasons
        assert not report.whole_region_modelable

        from repro.pipeline import analyze

        result = analyze(spec)
        assert result.folded.affine_ops() == result.folded.dyn_ops()

    def test_subnest_reporting(self):
        pb = ProgramBuilder("t")
        with pb.function("main", ["A", "B"]) as f:
            with f.loop(0, 8) as i:          # modelable
                f.store("B", f.load("A", index=i), index=i)
            with f.loop(0, 8) as i:          # indirection: fails
                row = f.load("A", index=i)
                f.store("B", f.load(row, offset=0), index=i)
            f.halt()
        report = analyze_static(pb.build(), ["main"])
        assert not report.whole_region_modelable
        assert len(report.modelable_nests()) == 1
