"""Exact failure-code verdicts, and static/dynamic affine agreement.

Unlike ``test_analyzer.py`` (which asserts a code is *present*), these
tests pin the *exact* verdict string per crafted program -- one per
paper failure code -- so a regression that starts emitting spurious
codes (or drops one) fails loudly.  The agreement tests exercise the
crosscheck invariant: every access :func:`static_affine_access_uids`
proves affine folds to an affine access function dynamically.
"""

from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, analyze
from repro.staticpoly import analyze_static, static_affine_access_uids


def build(body, params=("A", "B")):
    pb = ProgramBuilder("t")
    with pb.function("main", list(params)) as f:
        body(f)
        f.halt()
    return pb.build()


class TestExactVerdicts:
    def test_clean_kernel_verdict_is_empty(self):
        def body(f):
            with f.loop(0, 16) as i:
                f.store("B", f.load("A", index=i), index=i)

        report = analyze_static(build(body), ["main"])
        assert report.reasons == ""
        assert [n.reasons for n in report.nests] == [""]

    def test_R_exactly(self):
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            with f.loop(0, 8) as i:
                f.call("helper", ["A", i])
            f.halt()
        with pb.function("helper", ["A", "i"]) as f:
            f.store("A", 1.0, index="i")
            f.ret()
        report = analyze_static(pb.build(), ["main"])
        assert report.reasons == "R"

    def test_C_exactly(self):
        # unconditional return from inside the loop body
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            r = f.call("body", ["A"], want_result=True)
            f.set("%sink", r)
            f.halt()
        with pb.function("body", ["A"]) as f:
            with f.loop(0, 8) as i:
                f.store("A", 0.0, index=i)
                with f.if_then("gt", i, 4):
                    f.ret(1)
            f.ret(0)
        report = analyze_static(pb.build(), ["body"])
        assert report.reasons == "C"

    def test_B_exactly(self):
        def body(f):
            n = f.load("A", index=0)
            with f.loop(0, n) as i:
                f.store("B", 0.0, index=i)

        report = analyze_static(build(body), ["main"])
        assert report.reasons == "B"

    def test_F_verdict_for_indirection(self):
        def body(f):
            row = f.load("A", index=0)  # loaded row pointer
            with f.loop(0, 8) as i:
                f.store("B", f.load(row, index=i), index=i)

        report = analyze_static(build(body), ["main"])
        # the anonymous loaded base also defeats alias checks (A) and
        # the computed address register lives in the loop (P): the
        # exact verdict for pointer indirection is the F-A-P triple
        assert report.reasons == "FAP"
        assert "F" in report.nests[0].reasons

    def test_A_exactly(self):
        def body(f):
            with f.loop(0, 8) as i:
                a = f.load("A", index=i)
                b = f.load("B", index=i)
                c = f.load("C", index=i)
                f.store("D", f.fadd(f.fadd(a, b), c), index=i)
                f.store("E", a, index=i)

        report = analyze_static(
            build(body, params=("A", "B", "C", "D", "E")), ["main"]
        )
        assert report.reasons == "A"

    def test_P_verdict_for_pointer_chasing(self):
        # base pointer re-loaded inside the loop: the loop test on the
        # chased pointer is also a non-affine bound, hence B-F-P
        def body(f):
            ptr = f.set(f.fresh_reg("p"), "A")
            w = f.while_begin()
            f.while_cond(w, "ne", ptr, 0)
            nxt = f.load(ptr, offset=0)
            f.set(ptr, nxt)
            f.while_end(w)

        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            body(f)
            f.halt()
        report = analyze_static(pb.build(), ["main"])
        assert report.reasons == "BFP"


class TestStaticAffineAccessUids:
    def test_affine_accesses_included(self):
        prog = build(lambda f: _copy_loop(f))
        uids = static_affine_access_uids(prog)
        mem_uids = {i.uid for _, _, i in prog.all_instrs() if i.is_mem}
        assert uids == mem_uids

    def test_indirect_access_excluded(self):
        def body(f):
            row = f.load("A", index=0)
            with f.loop(0, 8) as i:
                f.store("B", f.load(row, index=i), index=i)

        prog = build(body)
        uids = static_affine_access_uids(prog)
        loads = [i for _, _, i in prog.all_instrs() if i.is_load]
        assert loads[0].uid in uids       # the A[0] pointer fetch is affine
        assert loads[1].uid not in uids   # the indirect access is not

    def test_loop_called_function_excluded(self):
        # params of a function called from inside a loop vary per
        # iteration: its accesses are not provably affine per-function
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            with f.loop(0, 8) as i:
                f.call("kern", [f.add("A", i)])
            f.halt()
        with pb.function("kern", ["p"]) as f:
            f.store("p", 1.0, offset=0)
            f.ret()
        prog = pb.build()
        kern_uids = {
            i.uid for fn, _, i in prog.all_instrs()
            if fn.name == "kern" and i.is_mem
        }
        assert kern_uids
        assert not (static_affine_access_uids(prog) & kern_uids)

    def test_redefined_param_excluded(self):
        def body(f):
            with f.loop(0, 4) as i:
                f.store("A", 0.0, index=i)   # before redefinition: stale
            f.set("A", f.load("B", index=0))
            f.store("A", 1.0, offset=0)

        prog = build(body)
        store_uids = {
            i.uid for _, _, i in prog.all_instrs() if i.is_store
        }
        assert not (static_affine_access_uids(prog) & store_uids)


def _copy_loop(f):
    with f.loop(0, 8) as i:
        f.store("B", f.load("A", index=i), index=i)


class TestAgreementWithDynamic:
    def test_static_affine_folds_affine(self):
        """The crosscheck invariant, asserted directly: every uid the
        static side proves affine has an affine folded label."""
        pb = ProgramBuilder("agree")
        with pb.function("main", ["A", "B", "n"]) as f:
            with f.loop(0, "n") as i:
                with f.loop(0, "n") as j:
                    idx = f.add(f.mul(i, 4), j)  # constant row stride
                    f.store("B", f.load("A", index=idx), index=idx)
            f.halt()

        def make_state():
            mem = Memory()
            a = mem.alloc_array([float(k) for k in range(16)])
            b = mem.alloc(16, init=0.0)
            return (a, b, 4), mem

        spec = ProgramSpec(name="agree", program=pb.build(),
                           make_state=make_state)
        result = analyze(spec, crosscheck=True)
        assert result.crosscheck.ok, result.crosscheck.render()
        affine = static_affine_access_uids(spec.program)
        assert affine  # the kernel's accesses are statically provable
        for fs in result.folded.statements.values():
            if fs.stmt.uid in affine and fs.exact and fs.had_label:
                assert fs.label_affine
