"""Flame-graph renderer edge cases: empty profiles, single frames,
recursion, graying, tiny-box elision, annotation, escaping."""

from repro.feedback import render_flamegraph_svg
from repro.iiv.schedule_tree import DynamicScheduleTree


def _tree(*records):
    """Build a tree from (context, ninstr) pairs; a context is a
    sequence of per-dimension element sequences."""
    tree = DynamicScheduleTree()
    for context, ninstr in records:
        tree.record_context(context, ninstr)
    return tree


class TestEmptyProfile:
    def test_empty_tree_renders_valid_svg(self):
        svg = render_flamegraph_svg(DynamicScheduleTree())
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        # root banner present even with no frames (weight floors at 1)
        assert "all (1 ops)" in svg

    def test_empty_tree_collapsed_is_empty(self):
        assert DynamicScheduleTree().to_collapsed() == ""


class TestSingleFrame:
    def test_single_frame_stack(self):
        tree = _tree(((("main",),), 10))
        svg = render_flamegraph_svg(tree)
        assert "main" in svg
        assert "all (10 ops)" in svg
        assert "100.0%" in svg
        assert tree.to_collapsed() == "main 10"

    def test_single_frame_title_and_annotation(self):
        tree = _tree(((("main",),), 5))
        svg = render_flamegraph_svg(
            tree,
            title="<custom> & title",
            annotate=lambda path, node: f"note:{'/'.join(path)}",
        )
        # both the title and annotation are HTML-escaped into the SVG
        assert "&lt;custom&gt; &amp; title" in svg
        assert "note:main" in svg


class TestRecursion:
    def test_recursive_component_repeats_element_along_path(self):
        # fib calling itself: the same element appears at two depths
        tree = _tree(
            ((("fib",),), 4),
            ((("fib", "fib"),), 2),
            ((("fib", "fib", "fib"),), 1),
        )
        assert tree.depth() == 3
        collapsed = tree.to_collapsed()
        assert "fib 4" in collapsed
        assert "fib;fib 2" in collapsed
        assert "fib;fib;fib 1" in collapsed
        svg = render_flamegraph_svg(tree)
        # one box per recursion level
        assert svg.count('class="frame"') == 3

    def test_self_weight_stays_additive_under_recursion(self):
        tree = _tree(
            ((("f",),), 6),
            ((("f", "f"),), 3),
        )
        total_self = sum(n.self_weight for _, n in tree.frames())
        assert total_self == tree.root.weight == 9


class TestRenderingControls:
    def test_grayed_regions_use_gray_fill(self):
        tree = _tree(((("main",),), 10))
        svg = render_flamegraph_svg(
            tree, grayed=lambda path, node: True
        )
        assert '#bbbbbb' in svg

    def test_loop_nodes_use_loop_tint(self):
        tree = _tree(((("main", "L0:main"), ("bb1",)), 10))
        svg = render_flamegraph_svg(tree)
        assert "#e4572e" in svg  # loop tint from the default palette

    def test_sub_pixel_boxes_elided(self):
        # one dominant frame and one 1/100000 sliver: the sliver's box
        # falls under min_px and is dropped, the total is unchanged
        tree = _tree(
            ((("hot",),), 100_000),
            ((("cold",),), 1),
        )
        svg = render_flamegraph_svg(tree, width=200)
        assert "hot" in svg
        assert "cold" not in svg
        assert "all (100001 ops)" in svg

    def test_width_scales_box_geometry(self):
        tree = _tree(((("main",),), 10))
        narrow = render_flamegraph_svg(tree, width=100)
        wide = render_flamegraph_svg(tree, width=1000)
        assert 'width="100"' in narrow
        assert 'width="1000"' in wide
