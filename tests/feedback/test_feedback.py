"""Feedback tests: strides, metrics, reports, flame graphs."""

import pytest

from repro.feedback import (
    compute_region_metrics,
    render_flamegraph_svg,
    render_report,
    reuse_percent,
    stride_scores,
)
from repro.pipeline import analyze
from repro.workloads.examples_paper import layerforward_kernel


@pytest.fixture(scope="module")
def layer_result():
    return analyze(layerforward_kernel(n1=7, n2=6))


class TestStride:
    def test_layerforward_scores(self, layer_result):
        leaf = [
            n
            for n in layer_result.forest.walk()
            if n.is_innermost() and n.depth == 2
        ][0]
        scores = stride_scores(leaf)
        # along cj (outer made innermost): conn[k][j] stride 1, l1[k]
        # stride 0, conn row-ptr load stride 0 -> 100% good
        assert scores[0] == 1.0
        # along ck: l1[k] and the row-pointer load are stride 1, but
        # conn[k][j] jumps a whole row -> 2/3 good
        assert scores[1] == pytest.approx(2 / 3, abs=0.01)

    def test_reuse_percent_bounds(self, layer_result):
        r = reuse_percent(layer_result.forest)
        assert 0.0 <= r <= 100.0


class TestRegionMetrics:
    def test_layerforward_row(self, layer_result):
        m = compute_region_metrics(
            layer_result.folded,
            layer_result.forest,
            layer_result.control.callgraph,
            region_funcs=["bpnn_layerforward"],
            label="backprop.c:253",
        )
        assert m.pct_aff == pytest.approx(100.0, abs=0.5)
        assert m.pct_ops > 90          # the kernel is the program
        assert m.interprocedural       # squash is called inside the nest
        assert m.pct_parallel_ops > 50 # the j loop is parallel
        assert m.ld_bin == 2
        assert m.tile_depth == 2
        assert not m.skew
        assert m.components_before == 1

    def test_row_rendering(self, layer_result):
        m = compute_region_metrics(
            layer_result.folded,
            layer_result.forest,
            layer_result.control.callgraph,
            label="x",
        )
        row = m.row()
        assert row["ld-bin"] == "2D"
        assert row["interproc."] in ("Y", "N")
        assert isinstance(row["%Aff"], int)

    def test_region_closure_includes_callees(self, layer_result):
        from repro.feedback import region_closure

        c = region_closure(
            layer_result.control.callgraph, ["bpnn_layerforward"]
        )
        assert "squash" in c
        assert "main" not in c


class TestReport:
    def test_render_report_mentions_properties(self, layer_result):
        text = render_report(layer_result.forest, layer_result.plans)
        assert "parallel=yes" in text
        assert "permutable=yes" in text
        assert "stride01=" in text
        assert "simplified AST" in text

    def test_ast_annotations(self, layer_result):
        from repro.schedule import render_ast

        out = render_ast(layer_result.forest, layer_result.plans)
        assert "for " in out
        assert "parallel" in out
        assert "tilable" in out


class TestFlameGraph:
    def test_svg_well_formed(self, layer_result):
        svg = render_flamegraph_svg(layer_result.schedule_tree)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<rect" in svg

    def test_hot_loop_visible(self, layer_result):
        svg = render_flamegraph_svg(layer_result.schedule_tree)
        # the layerforward loop id appears as a frame label or tooltip
        assert "bpnn_layerforward" in svg

    def test_gray_and_annotations(self, layer_result):
        svg = render_flamegraph_svg(
            layer_result.schedule_tree,
            annotate=lambda path, node: "interchange + simd",
            grayed=lambda path, node: "squash" in path[-1],
        )
        assert "interchange + simd" in svg
        assert "#bbbbbb" in svg  # something got grayed

    def test_weights_monotone(self, layer_result):
        tree = layer_result.schedule_tree
        for _, node in tree.frames():
            child_sum = sum(c.weight for c in node.children.values())
            assert node.weight >= child_sum
