"""Automatic region-selection tests."""

import pytest

from repro.feedback.regions import suggest_region, suggest_regions
from repro.pipeline import analyze
from repro.workloads import rodinia_workloads
from repro.workloads.backprop import build_backprop


class TestSuggestRegion:
    @pytest.fixture(scope="class")
    def backprop(self):
        return analyze(build_backprop())

    def test_picks_a_kernel_not_nothing(self, backprop):
        cand = suggest_region(backprop)
        assert cand is not None
        assert cand.transformable_ops > 0

    def test_candidates_ranked(self, backprop):
        cands = suggest_regions(backprop, top=5)
        scores = [c.score for c in cands]
        assert scores == sorted(scores, reverse=True)

    def test_region_funcs_form_closure(self, backprop):
        cand = suggest_region(backprop)
        # squash is called from layerforward: a region containing the
        # latter must contain the former
        if "bpnn_layerforward" in cand.funcs:
            assert "squash" in cand.funcs

    def test_agrees_with_hand_selection_on_suite(self):
        """For most benchmarks the automatic pick covers the workload's
        hand-annotated kernel functions (the paper's by-hand choice)."""
        hits = 0
        total = 0
        for name in ("backprop", "srad_v1", "hotspot", "nw", "kmeans"):
            spec = rodinia_workloads()[name]()
            result = analyze(spec)
            cand = suggest_region(result)
            total += 1
            if cand and set(spec.region_funcs) & set(cand.funcs):
                hits += 1
        assert hits >= total - 1

    def test_transformable_never_exceeds_ops(self, backprop):
        for cand in suggest_regions(backprop, top=10):
            assert 0 <= cand.transformable_ops <= cand.ops
