"""Report / AST rendering edge-case tests."""

import pytest

from repro.feedback import nest_report, render_report
from repro.feedback.report import loop_src_line
from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, analyze
from repro.schedule import plan_nest, render_ast


@pytest.fixture(scope="module")
def result():
    pb = ProgramBuilder("t")
    with pb.function("main", ["A", "B"]) as f:
        with f.loop(0, 6, line=100) as i:
            with f.loop(0, 6, line=101) as j:
                idx = f.add(f.mul(i, 6), j)
                f.store("B", f.load("A", index=idx, line=102), index=idx,
                        line=102)
        with f.loop(0, 4, line=200) as i:
            f.store("B", 0.0, index=i, line=201)
        f.halt()

    def state():
        mem = Memory()
        return (mem.alloc_array([1.0] * 36), mem.alloc(36, 0.0)), mem

    return analyze(ProgramSpec("t", pb.build(), state))


class TestLoopSrcLine:
    def test_line_recovered_from_debug_info(self, result):
        deep = [n for n in result.forest.walk() if n.depth == 2][0]
        # min over the nest's instructions: the loop's own induction
        # update (line 101) or the body accesses (line 102)
        assert loop_src_line(result.forest, deep) in (101, 102)

    def test_outer_includes_inner_lines(self, result):
        outer = [
            n for n in result.forest.walk()
            if n.depth == 1 and n.children
        ][0]
        # min over the whole region: the innermost access line
        assert loop_src_line(result.forest, outer) == 100 or \
            loop_src_line(result.forest, outer) == 102


class TestNestReport:
    def test_dims_ordered_outer_first(self, result):
        leaf = [n for n in result.forest.walk() if n.depth == 2][0]
        plan = plan_nest(result.forest, leaf, [1.0, 1.0])
        rep = nest_report(result.forest, leaf, plan)
        assert len(rep.dims) == 2
        assert rep.ops == leaf.ops_total

    def test_flags(self, result):
        leaf = [n for n in result.forest.walk() if n.depth == 2][0]
        plan = plan_nest(result.forest, leaf, [1.0, 1.0])
        rep = nest_report(result.forest, leaf, plan)
        assert rep.simd_suggested() == plan.simd
        assert rep.tile_suggested() == (plan.tile_dims >= 2)


class TestRenderReport:
    def test_top_limits_output(self, result):
        full = render_report(result.forest, result.plans, top=10)
        one = render_report(result.forest, result.plans, top=1)
        assert full.count("nest ") > one.count("nest ")

    def test_hot_nest_listed_first(self, result):
        text = render_report(result.forest, result.plans)
        first = text.index("main:L")
        assert "ops" in text[first:first + 120]

    def test_no_transformation_case(self):
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            # a 1-D sequential pointer-chase: nothing to suggest
            cur = f.set(f.fresh_reg("p"), "A")
            w = f.while_begin()
            nxt = f.load(cur, offset=0)
            f.while_cond(w, "ne", nxt, 0)
            f.set(cur, nxt)
            f.while_end(w)
            f.halt()

        def state():
            mem = Memory()
            c = mem.alloc_array([0])
            b = mem.alloc_array([c])
            a = mem.alloc_array([b])
            return (a,), mem

        r = analyze(ProgramSpec("chase", pb.build(), state))
        text = render_report(r.forest, r.plans)
        assert "nest" in text  # still reported, possibly without steps


class TestRenderAst:
    def test_structure_and_annotations(self, result):
        out = render_ast(result.forest, result.plans)
        assert out.count("for ") >= 3
        assert "ops=" in out
        assert "[parallel" in out or "parallel" in out

    def test_statement_summaries(self, result):
        out = render_ast(result.forest, result.plans, show_stmts=True)
        assert "mem refs" in out
        bare = render_ast(result.forest, result.plans, show_stmts=False)
        assert "mem refs" not in bare

    def test_indentation_reflects_nesting(self, result):
        out = render_ast(result.forest, [])
        lines = [l for l in out.splitlines() if "for" in l]
        depths = [len(l) - len(l.lstrip()) for l in lines]
        assert max(depths) > min(depths)
