"""Property tests: Fourier-Motzkin projection and emptiness soundness.

The FM core decides every legality question in the repository, so we
cross-validate it against brute-force point enumeration on random
small polyhedra.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poly import Polyhedron


@st.composite
def random_polyhedron(draw):
    """A random 2-D polyhedron inside a small bounding box."""
    cons = []
    n_extra = draw(st.integers(0, 3))
    for _ in range(n_extra):
        a = draw(st.integers(-2, 2))
        b = draw(st.integers(-2, 2))
        k = draw(st.integers(-6, 6))
        cons.append((a, b, k))
    box = Polyhedron.box([(0, 5), (0, 5)])
    p = Polyhedron(2, ineqs=list(box.ineqs) + cons)
    return p


def brute_points(p):
    return {
        (x, y)
        for x in range(-1, 7)
        for y in range(-1, 7)
        if p.contains((x, y))
    }


class TestProjection:
    @given(random_polyhedron())
    @settings(max_examples=60, deadline=None)
    def test_eliminate_matches_brute_force(self, p):
        truth = {x for (x, y) in brute_points(p)}
        proj = p.eliminate(1)
        got = {x for x in range(-1, 7) if proj.contains((x,))}
        # FM gives the rational shadow: a superset of the integer
        # projection that agrees on this box when truth is nonempty
        assert truth <= got

    @given(random_polyhedron())
    @settings(max_examples=60, deadline=None)
    def test_emptiness_agrees_with_enumeration(self, p):
        pts = brute_points(p)
        if pts:
            assert not p.is_empty()
        else:
            # is_empty may be False only if rational points exist
            # outside the integer grid; for box-bounded polyhedra with
            # unit coefficients this cannot stretch past the box, so
            # check via cardinality instead
            if not p.is_empty():
                assert p.card() == 0 or pts  # card counts integer points

    @given(random_polyhedron())
    @settings(max_examples=60, deadline=None)
    def test_card_matches_enumeration(self, p):
        assert p.card() == len(brute_points(p))

    @given(random_polyhedron())
    @settings(max_examples=60, deadline=None)
    def test_sample_is_member_and_lexmin(self, p):
        s = p.sample()
        pts = brute_points(p)
        if s is None:
            assert not pts
        else:
            assert s in pts
            assert s == min(pts)

    @given(random_polyhedron(), random_polyhedron())
    @settings(max_examples=40, deadline=None)
    def test_intersection_is_set_intersection(self, a, b):
        got = brute_points(a.intersect(b))
        assert got == brute_points(a) & brute_points(b)

    @given(random_polyhedron())
    @settings(max_examples=40, deadline=None)
    def test_bounds_are_tight_on_integers(self, p):
        pts = brute_points(p)
        if not pts:
            return
        lo, hi = p.bounds((1, 1, 0))  # x + y
        vals = {x + y for (x, y) in pts}
        assert lo is not None and hi is not None
        assert lo <= min(vals) and max(vals) <= hi
