"""Unit tests for affine expressions, functions, and exact fitting."""

from fractions import Fraction

import pytest

from repro.poly import AffineExpr, AffineFunction, fit_affine, fit_affine_function


class TestAffineExpr:
    def test_eval(self):
        e = AffineExpr((2, -1), 3)  # 2x - y + 3
        assert e((1, 2)) == 3
        assert e.eval_int((0, 0)) == 3

    def test_rational(self):
        e = AffineExpr((1,), 1, 2)  # (x + 1) / 2
        assert e((1,)) == 1
        assert e((2,)) == Fraction(3, 2)
        with pytest.raises(ValueError):
            e.eval_int((2,))

    def test_normalization(self):
        assert AffineExpr((2, 4), 6, 2) == AffineExpr((1, 2), 3, 1)
        assert AffineExpr((1,), 0, -1) == AffineExpr((-1,), 0, 1)

    def test_zero_den_rejected(self):
        with pytest.raises(ValueError):
            AffineExpr((1,), 0, 0)

    def test_algebra(self):
        a = AffineExpr((1, 0), 1)
        b = AffineExpr((0, 1), -1)
        assert (a + b)((3, 4)) == 7
        assert (a - b)((3, 4)) == 1
        assert a.scale(3)((2, 0)) == 9

    def test_substitute_compose(self):
        # f(x, y) = x + 2y; x = u + 1, y = 2u
        f = AffineExpr((1, 2), 0)
        x = AffineExpr((1,), 1)
        y = AffineExpr((2,), 0)
        g = f.substitute([x, y])
        assert g((3,)) == (3 + 1) + 2 * 6

    def test_pretty(self):
        e = AffineExpr((1, -1), 0)
        assert e.pretty(["i", "j"]) == "i - j"
        assert AffineExpr.constant(5, 2).pretty() == "5"

    def test_var_constructor(self):
        v = AffineExpr.var(1, 3)
        assert v((9, 7, 5)) == 7

    def test_as_row(self):
        assert AffineExpr((1, -2), 3).as_row() == (1, -2, 3)
        with pytest.raises(ValueError):
            AffineExpr((1,), 1, 2).as_row()


class TestAffineFunction:
    def test_eval(self):
        f = AffineFunction([AffineExpr((1, 0), 0), AffineExpr((0, 1), -1)])
        assert f.eval_int((5, 3)) == (5, 2)

    def test_compose(self):
        f = AffineFunction([AffineExpr((1, 1), 0)])  # x+y
        g = AffineFunction([AffineExpr((2,), 0), AffineExpr((0,), 1)])  # (2u, 1)
        h = f.compose(g)
        assert h.eval_int((4,)) == (9,)

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            AffineFunction([AffineExpr((1,), 0), AffineExpr((1, 0), 0)])


class TestFitAffine:
    def test_exact_line(self):
        pts = [(0,), (1,), (2,), (5,)]
        vals = [3, 5, 7, 13]  # 2x + 3
        e = fit_affine(pts, vals)
        assert e == AffineExpr((2,), 3)

    def test_2d_plane(self):
        pts = [(0, 0), (1, 0), (0, 1), (2, 3)]
        vals = [1, 2, 4, 12]  # x + 3y + 1
        e = fit_affine(pts, vals)
        assert e == AffineExpr((1, 3), 1)

    def test_non_affine_rejected(self):
        pts = [(0,), (1,), (2,)]
        vals = [0, 1, 4]  # x^2
        assert fit_affine(pts, vals) is None

    def test_underdetermined_verified(self):
        # single point: fit must still interpolate it
        e = fit_affine([(3, 4)], [10])
        assert e is not None
        assert e((3, 4)) == 10

    def test_rational_coefficient(self):
        pts = [(0,), (2,), (4,)]
        vals = [0, 1, 2]  # x / 2
        e = fit_affine(pts, vals)
        assert e == AffineExpr((1,), 0, 2)

    def test_empty(self):
        assert fit_affine([], []) is None

    def test_constant(self):
        e = fit_affine([(0, 0), (5, 9)], [7, 7])
        assert e is not None and e.is_constant()
        assert e((100, -3)) == 7

    def test_fit_function(self):
        pts = [(0, 0), (0, 1), (1, 0), (2, 2)]
        vecs = [(p[0], p[1] - 1) for p in pts]
        f = fit_affine_function(pts, vecs)
        assert f is not None
        assert f.eval_int((4, 7)) == (4, 6)

    def test_fit_function_partial_failure(self):
        pts = [(0,), (1,), (2,)]
        vecs = [(0, 0), (1, 1), (2, 4)]  # second component non-affine
        assert fit_affine_function(pts, vecs) is None
