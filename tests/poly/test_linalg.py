"""Unit tests for the exact linear-algebra kernel."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.poly.linalg import (
    hermite_normal_form,
    integer_solvable,
    normalize_row,
    rank,
    solve_int,
    solve_rational,
    vec_gcd,
)


class TestBasics:
    def test_vec_gcd(self):
        assert vec_gcd([4, 6, 8]) == 2
        assert vec_gcd([3, 5]) == 1
        assert vec_gcd([0, 0]) == 0
        assert vec_gcd([-4, 6]) == 2

    def test_normalize_row(self):
        assert normalize_row([2, 4, -6]) == (1, 2, -3)
        assert normalize_row([0, 0]) == (0, 0)
        assert normalize_row([5]) == (1,)   # single entry: gcd = itself
        assert normalize_row([5, 0]) == (1, 0)


class TestSolvers:
    def test_solve_int_unique(self):
        # x + y = 3, x - y = 1 -> (2, 1)
        sol = solve_int([[1, 1], [1, -1]], [3, 1])
        assert sol == [Fraction(2), Fraction(1)]

    def test_solve_int_inconsistent(self):
        assert solve_int([[1, 1], [1, 1]], [1, 2]) is None

    def test_solve_int_underdetermined_pins_free(self):
        sol = solve_int([[1, 1]], [5])
        assert sol is not None
        assert sol[0] + sol[1] == 5

    def test_solve_int_rational_result(self):
        sol = solve_int([[2]], [3])
        assert sol == [Fraction(3, 2)]

    def test_agreement_with_rational_solver(self):
        rows = [[2, 1, 0], [0, 3, -1], [1, 0, 1]]
        rhs = [5, 1, 4]
        a = solve_int(rows, rhs)
        b = solve_rational(
            [[Fraction(x) for x in r] for r in rows],
            [Fraction(x) for x in rhs],
        )
        assert a == b

    @given(
        st.lists(
            st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
            min_size=1,
            max_size=4,
        ),
        st.integers(-3, 3),
        st.integers(-3, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_solutions_verify(self, rows, x, y):
        rhs = [a * x + b * y for (a, b) in rows]
        sol = solve_int(rows, rhs)
        assert sol is not None  # consistent by construction
        for (a, b), r in zip(rows, rhs):
            assert a * sol[0] + b * sol[1] == r


class TestRankHNF:
    def test_rank(self):
        assert rank([[1, 0], [0, 1]]) == 2
        assert rank([[1, 2], [2, 4]]) == 1
        assert rank([]) == 0
        assert rank([[0, 0]]) == 0

    def test_hnf_identity(self):
        h = hermite_normal_form([[1, 0], [0, 1]])
        assert h == [[1, 0], [0, 1]]

    def test_hnf_gcd_row(self):
        h = hermite_normal_form([[4], [6]])
        assert h == [[2]]

    def test_hnf_drops_dependent_rows(self):
        h = hermite_normal_form([[1, 2], [2, 4]])
        assert h == [[1, 2]]


class TestIntegerSolvable:
    def test_trivial(self):
        assert integer_solvable([])
        assert integer_solvable([(1, -3)])       # x = 3

    def test_parity_conflict(self):
        assert not integer_solvable([(2, -1)])   # 2x = 1

    def test_gcd_condition(self):
        assert integer_solvable([(4, 6, -2)])    # 4x + 6y = 2
        assert not integer_solvable([(4, 6, -3)])  # gcd 2 does not divide 3

    def test_zero_rows(self):
        assert integer_solvable([(0, 0, 0)])
        assert not integer_solvable([(0, 0, 5)])
