"""Unit tests for named sets (ISet) and piecewise-affine maps (IMap)."""

import pytest

from repro.poly import (
    AffineExpr,
    AffineFunction,
    IMap,
    ISet,
    Polyhedron,
    Space,
)


class TestSpace:
    def test_basic(self):
        s = Space(["i", "j"])
        assert s.dim == 2
        assert s.index("j") == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Space(["i", "i"])


class TestISet:
    def setup_method(self):
        self.space = Space(["i", "j"])
        self.box = ISet(self.space, [Polyhedron.box([(0, 3), (0, 3)])])

    def test_empty_and_universe(self):
        assert ISet.empty(self.space).is_empty()
        assert not ISet.universe(self.space).is_empty()

    def test_contains_and_card(self):
        assert self.box.contains((0, 0))
        assert not self.box.contains((4, 0))
        assert self.box.card() == 16

    def test_from_points(self):
        s = ISet.from_points(self.space, [(1, 2), (3, 0)])
        assert s.card() == 2
        assert s.contains((1, 2)) and s.contains((3, 0))

    def test_union_and_intersect(self):
        a = ISet(self.space, [Polyhedron.box([(0, 1), (0, 1)])])
        b = ISet(self.space, [Polyhedron.box([(1, 2), (1, 2)])])
        u = a.union(b)
        assert u.contains((0, 0)) and u.contains((2, 2))
        i = a.intersect(b)
        assert i.card() == 1 and i.contains((1, 1))

    def test_coalesce_drops_subsumed(self):
        small = Polyhedron.box([(1, 2), (1, 2)])
        big = Polyhedron.box([(0, 3), (0, 3)])
        s = ISet(self.space, [small, big]).coalesce()
        assert len(s.pieces) == 1
        assert s.card() == 16

    def test_equality(self):
        a = ISet(self.space, [Polyhedron.box([(0, 3), (0, 3)])])
        b = ISet(
            self.space,
            [
                Polyhedron.box([(0, 3), (0, 1)]),
                Polyhedron.box([(0, 3), (2, 3)]),
            ],
        )
        assert a == b  # same point set, different pieces

    def test_space_mismatch_rejected(self):
        other = ISet(Space(["x", "y"]), [Polyhedron.box([(0, 1), (0, 1)])])
        with pytest.raises(ValueError):
            self.box.union(other)

    def test_pretty_mentions_names(self):
        s = self.box.pretty()
        assert "i" in s and "j" in s

    def test_points_enumeration(self):
        s = ISet.from_points(self.space, [(0, 1), (2, 3)])
        assert sorted(s.points()) == [(0, 1), (2, 3)]


class TestIMap:
    def setup_method(self):
        self.inp = Space(["i", "j"])
        self.out = Space(["p", "q"])
        dom = Polyhedron.box([(0, 3), (1, 3)])
        fn = AffineFunction(
            [AffineExpr((1, 0), 0), AffineExpr((0, 1), -1)]
        )
        self.m = IMap(self.inp, self.out, [(dom, fn)])

    def test_apply(self):
        assert self.m.apply((2, 3)) == (2, 2)
        assert self.m.apply((9, 9)) is None  # outside the domain

    def test_domain(self):
        d = self.m.domain()
        assert d.card() == 12

    def test_delta_signs(self):
        # identity on i (0), shift -1 on j -> producer one behind: '+'
        sigs = self.m.delta_signs()
        assert sigs == [("0", "+")]

    def test_multi_piece_map(self):
        # boundary clamp: j = max(j-1, 0)
        d1 = Polyhedron.box([(0, 3), (0, 0)])
        f1 = AffineFunction([AffineExpr((1, 0), 0), AffineExpr((0, 0), 0)])
        d2 = Polyhedron.box([(0, 3), (1, 3)])
        f2 = AffineFunction([AffineExpr((1, 0), 0), AffineExpr((0, 1), -1)])
        m = IMap(self.inp, self.out, [(d1, f1), (d2, f2)])
        assert m.apply((2, 0)) == (2, 0)
        assert m.apply((2, 2)) == (2, 1)
        sigs = m.delta_signs()
        assert ("0", "0") in sigs and ("0", "+") in sigs

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IMap(
                self.inp,
                self.out,
                [(Polyhedron.box([(0, 1)]), AffineFunction([]))],
            )

    def test_empty_map(self):
        m = IMap(self.inp, self.out, [])
        assert m.is_empty()

    def test_pretty(self):
        assert "->" in self.m.pretty()
