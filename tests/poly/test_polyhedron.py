"""Unit tests for the core Polyhedron type."""


import pytest

from repro.poly import Polyhedron


def tri(n):
    """Triangle 0 <= j <= i < n (the paper's Fig. 4 domain)."""
    # vars (i, j)
    return Polyhedron(
        2,
        ineqs=[
            (1, 0, 0),        # i >= 0
            (-1, 0, n - 1),   # i <= n-1
            (0, 1, 0),        # j >= 0
            (1, -1, 0),       # j <= i
        ],
    )


class TestContains:
    def test_box(self):
        b = Polyhedron.box([(0, 3), (1, 2)])
        assert b.contains((0, 1))
        assert b.contains((3, 2))
        assert not b.contains((4, 1))
        assert not b.contains((0, 0))

    def test_point(self):
        p = Polyhedron.from_point((5, -2))
        assert p.contains((5, -2))
        assert not p.contains((5, -1))

    def test_triangle(self):
        t = tri(4)
        assert t.contains((0, 0))
        assert t.contains((3, 3))
        assert not t.contains((2, 3))


class TestEmptiness:
    def test_universe_nonempty(self):
        assert not Polyhedron.universe(3).is_empty()

    def test_contradictory_eqs(self):
        # x = 0 and x = 1
        p = Polyhedron(1, eqs=[(1, 0), (1, -1)])
        assert p.is_empty()

    def test_contradictory_ineqs(self):
        # x >= 1 and x <= 0
        p = Polyhedron(1, ineqs=[(1, -1), (-1, 0)])
        assert p.is_empty()

    def test_rationally_feasible_integrally_empty(self):
        # 2x = 1 has no integer solution
        p = Polyhedron(1, eqs=[(2, -1)])
        assert p.is_empty()

    def test_tight_but_feasible(self):
        # x >= 0 and x <= 0 -> x = 0
        p = Polyhedron(1, ineqs=[(1, 0), (-1, 0)])
        assert not p.is_empty()
        assert p.contains((0,))

    def test_empty_triangle(self):
        t = tri(4).add_constraint((0, 1, -5))  # j >= 5 impossible
        assert t.is_empty()

    def test_multidim_interaction(self):
        # x + y >= 5, x <= 1, y <= 1 -> empty
        p = Polyhedron(2, ineqs=[(1, 1, -5), (-1, 0, 1), (0, -1, 1)])
        assert p.is_empty()


class TestBounds:
    def test_box_var_bounds(self):
        b = Polyhedron.box([(0, 3), (1, 2)])
        assert b.var_bounds(0) == (0, 3)
        assert b.var_bounds(1) == (1, 2)

    def test_expr_bounds(self):
        b = Polyhedron.box([(0, 3), (1, 2)])
        lo, hi = b.bounds((1, 1, 0))  # x + y
        assert (lo, hi) == (1, 5)

    def test_triangle_inner_bound_depends_on_outer(self):
        t = tri(4)
        lo, hi = t.var_bounds(1)
        assert (lo, hi) == (0, 3)
        t0 = t.fix(0, 2)
        assert t0.var_bounds(0) == (0, 2)

    def test_unbounded(self):
        p = Polyhedron(1, ineqs=[(1, 0)])  # x >= 0
        lo, hi = p.var_bounds(0)
        assert lo == 0 and hi is None

    def test_rational_bound(self):
        # 2x <= 5, x >= 0
        p = Polyhedron(1, ineqs=[(-2, 5), (1, 0)])
        lo, hi = p.var_bounds(0)
        assert lo == 0
        # normalization tightens 2x <= 5 to x <= 2 over the integers
        assert hi == 2

    def test_bounds_empty_raises(self):
        p = Polyhedron(1, ineqs=[(1, -1), (-1, 0)])
        with pytest.raises(ValueError):
            p.bounds((1, 0))


class TestElimination:
    def test_project_box(self):
        b = Polyhedron.box([(0, 3), (1, 2)])
        p = b.eliminate(1)
        assert p.dim == 1
        assert p.var_bounds(0) == (0, 3)

    def test_project_triangle(self):
        t = tri(4)
        pj = t.eliminate(0)  # project out i: j in [0, 3]
        assert pj.var_bounds(0) == (0, 3)
        pi = t.eliminate(1)  # project out j: i in [0, 3]
        assert pi.var_bounds(0) == (0, 3)

    def test_eliminate_through_equality(self):
        # x = 2y, 0 <= x <= 6 -> y in [0, 3]
        p = Polyhedron(2, eqs=[(1, -2, 0)], ineqs=[(1, 0, 0), (-1, 0, 6)])
        py = p.eliminate(0)
        assert py.var_bounds(0) == (0, 3)

    def test_project_onto_order(self):
        b = Polyhedron.box([(0, 1), (2, 3), (4, 5)])
        p = b.project_onto([2, 0])
        assert p.dim == 2
        assert p.var_bounds(0) == (4, 5)
        assert p.var_bounds(1) == (0, 1)


class TestCardinality:
    def test_box(self):
        assert Polyhedron.box([(0, 3), (1, 2)]).card() == 8

    def test_triangle(self):
        assert tri(4).card() == 10  # 1+2+3+4

    def test_point(self):
        assert Polyhedron.from_point((7, 8, 9)).card() == 1

    def test_empty(self):
        p = Polyhedron(1, ineqs=[(1, -1), (-1, 0)])
        assert p.card() == 0

    def test_with_equality(self):
        # diagonal of a 4x4 box
        p = Polyhedron.box([(0, 3), (0, 3)]).add_constraint((1, -1, 0), is_eq=True)
        assert p.card() == 4

    def test_lattice_1d(self):
        # even points in [0, 6]: x = 2y projected representation
        p = Polyhedron(2, eqs=[(1, -2, 0)], ineqs=[(1, 0, 0), (-1, 0, 6)])
        assert p.card() == 4  # (0,0),(2,1),(4,2),(6,3)


class TestPoints:
    def test_lexicographic(self):
        pts = list(Polyhedron.box([(0, 1), (0, 1)]).points())
        assert pts == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_triangle_points(self):
        pts = set(tri(3).points())
        assert pts == {(0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)}

    def test_sample(self):
        assert tri(4).sample() == (0, 0)
        empty = Polyhedron(1, ineqs=[(1, -1), (-1, 0)])
        assert empty.sample() is None


class TestSubset:
    def test_box_in_box(self):
        small = Polyhedron.box([(1, 2), (1, 2)])
        big = Polyhedron.box([(0, 3), (0, 3)])
        assert small.is_subset(big)
        assert not big.is_subset(small)

    def test_equality(self):
        a = Polyhedron.box([(0, 3)])
        b = Polyhedron(1, ineqs=[(1, 0), (-1, 3)])
        assert a == b

    def test_empty_subset_of_all(self):
        e = Polyhedron(1, ineqs=[(1, -1), (-1, 0)])
        assert e.is_subset(Polyhedron.box([(5, 6)]))


class TestPermute:
    def test_swap(self):
        t = tri(4)  # j <= i
        s = t.permute([1, 0])  # now dims are (j, i): i <= ... wait, j is dim0
        assert s.contains((0, 3))  # (j=0, i=3)
        assert not s.contains((3, 0))

    def test_fix(self):
        b = Polyhedron.box([(0, 3), (1, 2)])
        f = b.fix(0, 2)
        assert f.dim == 1
        assert f.var_bounds(0) == (1, 2)
