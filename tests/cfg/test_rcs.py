"""Recursive-component-set tests, including the paper's Fig. 2c/2d."""

from repro.cfg import build_recursive_component_set


class TestFig2d:
    """Fig. 2c/2d: call graph with one recursive component.

    The figure reports ``components = {L1}``, ``L1.entries = {B}``,
    ``L1.headers = {B, C}``: the SCC is {B, C} entered through B; after
    peeling header B the remaining cycle through C requires a second
    header.  That shape needs B->C, C->B plus a second cycle C->C (or
    an inner 2-cycle not through B); we use C->C.
    """

    NODES = {"M", "A", "B", "C", "E"}
    EDGES = {
        ("M", "A"),
        ("A", "B"),
        ("B", "C"),
        ("C", "B"),
        ("C", "C"),
        ("B", "E"),
    }

    def test_single_component(self):
        rcs = build_recursive_component_set(self.NODES, self.EDGES, "M")
        assert len(rcs.components) == 1
        c = rcs.components[0]
        assert c.functions == {"B", "C"}

    def test_entries_and_headers(self):
        rcs = build_recursive_component_set(self.NODES, self.EDGES, "M")
        c = rcs.components[0]
        assert c.entries == {"B"}
        assert c.headers == {"B", "C"}

    def test_lookups(self):
        rcs = build_recursive_component_set(self.NODES, self.EDGES, "M")
        assert rcs.component_of("B") is rcs.components[0]
        assert rcs.component_of("C") is rcs.components[0]
        assert rcs.component_of("A") is None
        assert rcs.is_entry("B") and not rcs.is_entry("C")
        assert rcs.is_header("B") and rcs.is_header("C")
        assert not rcs.is_header("A")


class TestShapes:
    def test_acyclic_cg_has_no_components(self):
        rcs = build_recursive_component_set(
            {"m", "f", "g"}, {("m", "f"), ("f", "g"), ("m", "g")}, "m"
        )
        assert rcs.components == []

    def test_self_recursion(self):
        rcs = build_recursive_component_set(
            {"m", "b"}, {("m", "b"), ("b", "b")}, "m"
        )
        assert len(rcs.components) == 1
        c = rcs.components[0]
        assert c.functions == {"b"}
        assert c.entries == {"b"}
        assert c.headers == {"b"}

    def test_mutual_recursion_single_header(self):
        # even/odd: m -> even <-> odd; peeling 'even' leaves no cycle
        rcs = build_recursive_component_set(
            {"m", "even", "odd"},
            {("m", "even"), ("even", "odd"), ("odd", "even")},
            "m",
        )
        c = rcs.components[0]
        assert c.functions == {"even", "odd"}
        assert c.entries == {"even"}
        assert c.headers == {"even"}

    def test_two_disjoint_components(self):
        rcs = build_recursive_component_set(
            {"m", "a", "b"},
            {("m", "a"), ("m", "b"), ("a", "a"), ("b", "b")},
            "m",
        )
        assert len(rcs.components) == 2
        assert {frozenset(c.functions) for c in rcs.components} == {
            frozenset({"a"}),
            frozenset({"b"}),
        }

    def test_component_entered_two_ways(self):
        rcs = build_recursive_component_set(
            {"m", "f", "g", "r"},
            {("m", "f"), ("m", "g"), ("f", "r"), ("g", "r"), ("r", "r")},
            "m",
        )
        c = rcs.components[0]
        assert c.functions == {"r"}
        assert c.entries == {"r"}

    def test_is_cfg_flag(self):
        rcs = build_recursive_component_set({"m", "b"}, {("m", "b"), ("b", "b")}, "m")
        assert rcs.components[0].is_cfg is False
