"""Dynamic CFG/CG reconstruction tests (Instrumentation I)."""


from repro.cfg import ControlStructureBuilder
from repro.isa import ProgramBuilder, run_program


def reconstruct(program, args=(), memory=None):
    csb = ControlStructureBuilder()
    run_program(program, args=args, memory=memory, observers=[csb])
    return csb


class TestDynamicCFG:
    def test_loop_edges_recovered(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 3) as i:
                f.add(i, 1)
            f.halt()
        csb = reconstruct(pb.build())
        cfg = csb.cfgs["main"]
        assert cfg.entry == "entry"
        # header has both body and exit successors; body jumps back
        headers = [b for b in cfg.nodes if "head" in b]
        assert len(headers) == 1
        h = headers[0]
        assert len(cfg.successors(h)) == 2
        assert h in {s for b in cfg.nodes for s in cfg.successors(b)}

    def test_only_executed_edges_present(self):
        """Dead branches never appear -- the paper's 'only the part of
        a program that is actually executed will be analyzed'."""
        pb = ProgramBuilder("t")
        with pb.function("main", ["x"]) as f:
            h = f.if_begin("lt", "x", 10)
            f.add(1, 1)
            f.if_else(h)
            f.add(2, 2)   # dead for x < 10
            f.if_end(h)
            f.halt()
        csb = reconstruct(pb.build(), args=[5])
        cfg = csb.cfgs["main"]
        elses = [b for b in cfg.nodes if b.startswith("else")]
        assert not elses  # the else block never executed

    def test_call_fallthrough_edge(self):
        """The call-site block gets an intraprocedural edge to the
        continuation block once the call returns."""
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.call("leaf", [])
            f.halt()
        with pb.function("leaf", []) as f:
            f.ret()
        csb = reconstruct(pb.build())
        cfg = csb.cfgs["main"]
        assert ("entry", "cont1") in cfg.edges

    def test_callgraph(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.call("a", [])
            f.call("b", [])
            f.halt()
        with pb.function("a", []) as f:
            f.call("b", [])
            f.ret()
        with pb.function("b", []) as f:
            f.ret()
        csb = reconstruct(pb.build())
        cg = csb.callgraph
        assert cg.root == "main"
        assert set(cg.callees("main")) == {"a", "b"}
        assert cg.callers("b") == ["a", "main"]
        # call sites recorded per block
        assert any(c[0] == "a" and c[2] == "b" for c in cg.call_sites)

    def test_uncalled_function_absent(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.halt()
        with pb.function("ghost", []) as f:
            f.ret()
        csb = reconstruct(pb.build())
        assert "ghost" not in csb.cfgs
        assert "ghost" not in csb.callgraph.nodes

    def test_trace_recording(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 2) as i:
                f.add(i, 0)
            f.halt()
        csb = ControlStructureBuilder(record_trace=True)
        run_program(pb.build(), observers=[csb])
        assert len(csb.trace) > 4  # entry + header visits + exits
