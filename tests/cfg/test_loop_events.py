"""Loop-event generation (Algorithms 1-2) on executed programs.

These tests run real mini-ISA programs, reconstruct the control
structure, replay the trace through the loop-event generator, and
check the emitted event stream -- covering the paper's Fig. 3
scenarios: loops across calls (Example 1) and recursion (Example 2).
"""

from repro.cfg import (
    ControlStructureBuilder,
    LoopEventGenerator,
    build_loop_forest,
    build_recursive_component_set,
)
from repro.isa import ProgramBuilder, run_program


def trace_loop_events(program, args=(), memory=None):
    csb = ControlStructureBuilder(record_trace=True)
    run_program(program, args=args, memory=memory, observers=[csb])
    forests = {
        f: build_loop_forest(f, cfg.nodes, cfg.edges, cfg.entry)
        for f, cfg in csb.cfgs.items()
    }
    rcs = build_recursive_component_set(
        csb.callgraph.nodes, csb.callgraph.edges, csb.callgraph.root
    )
    gen = LoopEventGenerator(forests, rcs)
    return list(gen.process_all(csb.trace)), forests, rcs


def build_example1():
    """Paper Fig. 3a: main calls A; A's loop calls B; B contains a loop."""
    pb = ProgramBuilder("ex1")
    with pb.function("main", []) as f:
        f.call("A", [])
        f.halt()
    with pb.function("A", []) as f:
        with f.loop(0, 2) as i:
            f.call("B", [])
        f.ret()
    with pb.function("B", []) as f:
        with f.loop(0, 3) as j:
            f.add(j, 1)
        f.ret()
    return pb.build()


def build_example2(depth=3):
    """Paper Fig. 3f: main calls D (calls C), then B; B recurses and
    calls C each activation."""
    pb = ProgramBuilder("ex2")
    with pb.function("main", []) as f:
        f.call("D", [])
        f.call("B", [0])
        f.halt()
    with pb.function("D", []) as f:
        f.call("C", [])
        f.ret()
    with pb.function("C", []) as f:
        f.add(1, 1)
        f.ret()
    with pb.function("B", ["n"]) as f:
        f.call("C", [])
        with f.if_then("lt", "n", depth - 1):
            f.call("B", [f.add("n", 1)])
        f.ret()
    return pb.build()


def kinds(events):
    return [e.kind for e in events]


class TestExample1:
    def test_loop_structure_found(self):
        _, forests, rcs = trace_loop_events(build_example1())
        assert len(forests["A"].all_loops) == 1
        assert len(forests["B"].all_loops) == 1
        assert rcs.components == []  # no recursion

    def test_event_kinds(self):
        events, _, _ = trace_loop_events(build_example1())
        ks = kinds(events)
        assert ks.count("Ec") == 0       # no recursion anywhere
        # A's loop entered once + B's loop entered on each of 2 calls
        assert ks.count("E") == 3
        assert ks.count("C") == 3        # main->A, A->B twice

    def test_entry_iteration_exit_counts(self):
        events, forests, _ = trace_loop_events(build_example1())
        la = forests["A"].all_loops[0]
        lb = forests["B"].all_loops[0]
        per_loop = {}
        for e in events:
            if e.loop is not None:
                per_loop.setdefault(e.loop.id, []).append(e.kind)
        # A's loop: one execution; every back-edge jump to the header is
        # an iteration event, including the final exit-test visit, so a
        # 2-trip top-test loop yields E, I, I, X
        assert per_loop[la.id].count("E") == 1
        assert per_loop[la.id].count("I") == 2
        assert per_loop[la.id].count("X") == 1
        # B's loop: two executions, 3 trips each -> 2x (E, I, I, I, X)
        assert per_loop[lb.id].count("E") == 2
        assert per_loop[lb.id].count("I") == 6
        assert per_loop[lb.id].count("X") == 2

    def test_nesting_order_on_stack(self):
        """B's loop events all happen while A's loop is live."""
        events, forests, _ = trace_loop_events(build_example1())
        la = forests["A"].all_loops[0]
        lb = forests["B"].all_loops[0]
        live = set()
        for e in events:
            if e.kind == "E":
                live.add(e.loop.id)
                if e.loop.id == lb.id:
                    assert la.id in live
            elif e.kind == "X":
                live.discard(e.loop.id)


class TestExample2:
    def test_recursive_component_found(self):
        _, _, rcs = trace_loop_events(build_example2())
        assert len(rcs.components) == 1
        c = rcs.components[0]
        assert c.functions == {"B"}
        assert c.entries == {"B"} and c.headers == {"B"}

    def test_recursive_loop_events(self):
        events, _, rcs = trace_loop_events(build_example2(depth=3))
        ks = kinds(events)
        # one entry (first call to B), two recursive calls -> 2 Ic,
        # two matching returns -> 2 Ir, one final exit -> Xr
        assert ks.count("Ec") == 1
        assert ks.count("Ic") == 2
        assert ks.count("Ir") == 2
        assert ks.count("Xr") == 1

    def test_non_component_calls_stay_plain(self):
        events, _, _ = trace_loop_events(build_example2())
        plain_calls = [e for e in events if e.kind == "C"]
        # main->D, D->C, and C called from each of 3 B activations
        assert len(plain_calls) == 2 + 3

    def test_stack_balanced_at_end(self):
        prog = build_example2()
        csb = ControlStructureBuilder(record_trace=True)
        run_program(prog, observers=[csb])
        forests = {
            f: build_loop_forest(f, cfg.nodes, cfg.edges, cfg.entry)
            for f, cfg in csb.cfgs.items()
        }
        rcs = build_recursive_component_set(
            csb.callgraph.nodes, csb.callgraph.edges, csb.callgraph.root
        )
        gen = LoopEventGenerator(forests, rcs)
        list(gen.process_all(csb.trace))
        assert gen.in_loops == []


class TestMixedShapes:
    def test_loop_in_recursive_function_reentered(self):
        """A CFG loop inside a recursive function must be exited (X)
        when the recursion iterates (Algorithm 2 lines 7-9)."""
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.call("R", [0])
            f.halt()
        with pb.function("R", ["n"]) as f:
            with f.loop(0, 2) as i:
                f.add(i, 1)
            with f.if_then("lt", "n", 2):
                f.call("R", [f.add("n", 1)])
            f.ret()
        events, forests, rcs = trace_loop_events(pb.build())
        lr = forests["R"].all_loops[0]
        per = [e.kind for e in events if e.loop is not None and e.loop.id == lr.id]
        # three activations each enter and exit the loop
        assert per.count("E") == 3
        assert per.count("X") == 3

    def test_sequential_sibling_loops(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 2) as i:
                f.add(i, 0)
            with f.loop(0, 3) as j:
                f.add(j, 0)
            f.halt()
        events, forests, _ = trace_loop_events(pb.build())
        assert len(forests["main"].all_loops) == 2
        ks = kinds(events)
        assert ks.count("E") == 2
        assert ks.count("X") == 2

    def test_nested_loop_inner_exited_on_outer_iteration(self):
        """Algorithm 1 lines 3-4: starting a new outer iteration exits
        live inner loops."""
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 2) as i:
                with f.loop(0, 2) as j:
                    f.add(i, j)
            f.halt()
        events, forests, _ = trace_loop_events(pb.build())
        inner = forests["main"].max_depth
        assert inner == 2
        deep = [l for l in forests["main"].all_loops if l.depth == 2][0]
        per = [e.kind for e in events if e.loop is not None and e.loop.id == deep.id]
        assert per.count("E") == 2  # re-entered on each outer iteration
        assert per.count("X") == 2
