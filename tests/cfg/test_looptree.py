"""Loop-nesting-forest tests, including the paper's Fig. 2 example."""

from repro.cfg import build_loop_forest


def forest(nodes, edges, entry):
    return build_loop_forest("f", nodes, edges, entry)


class TestFig2:
    """Paper Fig. 2a/2b: CFG A->B->C<->D, D->B back-edge, B->E exit.

    One SCC {B, C, D} gives loop L1 with header B; removing (D, B)
    leaves the sub-SCC {C, D}, an *irreducible* loop L2 with entries
    {C, D} of which C is selected header.
    """

    NODES = {"A", "B", "C", "D", "E"}
    EDGES = {
        ("A", "B"),
        ("B", "C"),
        ("B", "D"),   # makes D a second entry of the inner loop
        ("C", "D"),
        ("D", "C"),
        ("D", "B"),   # back-edge of L1
        ("B", "E"),
    }

    def test_two_nested_loops(self):
        f = forest(self.NODES, self.EDGES, "A")
        assert len(f.all_loops) == 2
        assert len(f.roots) == 1

    def test_outer_loop(self):
        f = forest(self.NODES, self.EDGES, "A")
        l1 = f.roots[0]
        assert l1.header == "B"
        assert l1.region == {"B", "C", "D"}
        assert l1.back_edges == {("D", "B")}
        assert l1.depth == 1

    def test_inner_irreducible_loop(self):
        f = forest(self.NODES, self.EDGES, "A")
        l2 = f.roots[0].children[0]
        assert l2.region == {"C", "D"}
        assert l2.entries == {"C", "D"}  # two entries: irreducible
        assert l2.header == "C"          # RPO-first entry, as in Fig. 2b
        assert l2.depth == 2
        assert l2.parent is f.roots[0]

    def test_lookup_helpers(self):
        f = forest(self.NODES, self.EDGES, "A")
        assert f.loop_of_header("B").depth == 1
        assert f.loop_of_header("C").depth == 2
        assert f.loop_of_header("A") is None
        assert f.innermost_containing("D").header == "C"
        assert f.innermost_containing("B").header == "B"
        assert f.innermost_containing("E") is None
        assert f.max_depth == 2


class TestBasicShapes:
    def test_no_loops(self):
        f = forest({"A", "B"}, {("A", "B")}, "A")
        assert f.all_loops == []
        assert f.max_depth == 0

    def test_self_loop(self):
        f = forest({"A", "B"}, {("A", "A"), ("A", "B")}, "A")
        assert len(f.all_loops) == 1
        lp = f.all_loops[0]
        assert lp.header == "A"
        assert lp.region == {"A"}
        assert lp.back_edges == {("A", "A")}

    def test_simple_while(self):
        # entry -> head <-> body, head -> exit
        f = forest(
            {"entry", "head", "body", "exit"},
            {("entry", "head"), ("head", "body"), ("body", "head"), ("head", "exit")},
            "entry",
        )
        assert len(f.all_loops) == 1
        lp = f.all_loops[0]
        assert lp.header == "head"
        assert lp.region == {"head", "body"}

    def test_triple_nest_depths(self):
        nodes = {"e", "h1", "h2", "h3", "b", "x"}
        edges = {
            ("e", "h1"),
            ("h1", "h2"),
            ("h2", "h3"),
            ("h3", "b"),
            ("b", "h3"),
            ("h3", "h2"),
            ("h2", "h1"),
            ("h1", "x"),
        }
        f = forest(nodes, edges, "e")
        assert f.max_depth == 3
        assert f.loop_of_header("h1").depth == 1
        assert f.loop_of_header("h2").depth == 2
        assert f.loop_of_header("h3").depth == 3
        assert f.loop_of_header("h3").parent is f.loop_of_header("h2")

    def test_sequential_loops_are_siblings(self):
        nodes = {"e", "h1", "b1", "m", "h2", "b2", "x"}
        edges = {
            ("e", "h1"),
            ("h1", "b1"),
            ("b1", "h1"),
            ("h1", "m"),
            ("m", "h2"),
            ("h2", "b2"),
            ("b2", "h2"),
            ("h2", "x"),
        }
        f = forest(nodes, edges, "e")
        assert len(f.roots) == 2
        assert {l.header for l in f.roots} == {"h1", "h2"}
        assert all(l.depth == 1 for l in f.roots)

    def test_header_is_rpo_first_entry(self):
        # diamond into a 2-entry loop: entries x and y, x first in RPO
        nodes = {"e", "x", "y", "z"}
        edges = {("e", "x"), ("e", "y"), ("x", "y"), ("y", "z"), ("z", "x")}
        f = forest(nodes, edges, "e")
        assert len(f.all_loops) == 1
        lp = f.all_loops[0]
        assert lp.region == {"x", "y", "z"}
        assert lp.entries == {"x", "y"}
        assert lp.header == "x"
