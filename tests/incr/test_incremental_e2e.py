"""End-to-end incremental re-analysis: byte identity or bust.

The contract under test: ``analyze(baseline=...)`` may reuse whatever
it wants, but the rendered report and metrics documents must be
byte-identical to a cold full analysis of the same program -- on both
engines, under ``--crosscheck``, and under parallel folding.
"""

import pytest

from repro.ddg import FrontierViolation
from repro.feedback.jsonout import (
    metrics_document,
    render_json,
    report_document,
)
from repro.incr import edited_spec, renumbered_spec
from repro.isa import fingerprint_program
from repro.obs import Tracer
from repro.pipeline import analyze, profile_control, profile_ddg
from repro.store import ArtifactStore, keys_for_spec
from repro.workloads import all_workloads


def _spec():
    return all_workloads()["kmeans"]()


def _docs(result):
    return (
        render_json(report_document(result)),
        render_json(metrics_document(result)),
    )


def _renumbered_spec():
    # a fresh, validated program (never an in-place mutation: programs
    # are immutable once compiled) with every uid shifted
    return renumbered_spec(_spec(), offset=1000)


@pytest.mark.parametrize(
    "engine,fold_jobs,crosscheck",
    [
        ("fast", 1, False),
        ("fast", 1, True),
        ("fast", 2, False),
        ("reference", 1, False),
    ],
)
def test_incremental_byte_identical_to_cold(
    tmp_path, engine, fold_jobs, crosscheck
):
    store = ArtifactStore(str(tmp_path))
    baseline = fingerprint_program(_spec().program)
    analyze(_spec(), engine=engine, store=store, fold_jobs=fold_jobs)

    inc = analyze(
        edited_spec(_spec(), "assign_points"),
        engine=engine,
        store=store,
        fold_jobs=fold_jobs,
        crosscheck=crosscheck,
        baseline=baseline,
    )
    assert inc.incremental is not None
    assert inc.incremental.mode == "incremental"
    # the one-function edit re-instruments exactly the sliced frontier
    assert set(inc.incremental.frontier) == {
        "assign_points", "update_centers",
    }
    assert inc.incremental.regions_reused == 1  # main
    assert inc.incremental.summary["modified"] == 1
    if crosscheck:
        assert inc.crosscheck is not None
        assert not inc.crosscheck.violations, inc.crosscheck.render()

    cold = analyze(
        edited_spec(_spec(), "assign_points"),
        engine=engine,
        fold_jobs=fold_jobs,
        crosscheck=crosscheck,
    )
    assert _docs(inc) == _docs(cold)


def test_identical_mode_runs_nothing(tmp_path):
    """A uid-renumbered program is all-unchanged: both stages are
    served from the baseline without executing anything."""
    store = ArtifactStore(str(tmp_path))
    baseline = fingerprint_program(_spec().program)
    analyze(_spec(), store=store)

    renum = _renumbered_spec()
    assert fingerprint_program(renum.program) != baseline
    inc = analyze(renum, store=store, baseline=baseline)
    assert inc.incremental.mode == "identical"
    assert inc.timings.stage1_cached and inc.timings.stage2_cached
    assert inc.incremental.regions_reused == len(renum.program.functions)

    cold = analyze(_renumbered_spec())
    assert _docs(inc) == _docs(cold)


def test_warm_hit_short_circuits_incremental(tmp_path):
    store = ArtifactStore(str(tmp_path))
    baseline = fingerprint_program(_spec().program)
    analyze(_spec(), store=store)
    edited = edited_spec(_spec(), "assign_points")
    analyze(edited, store=store)  # now ddg- of the edited program exists

    again = analyze(
        edited_spec(_spec(), "assign_points"), store=store, baseline=baseline
    )
    assert again.incremental.mode == "warm"
    assert again.incremental.reason == "stage2-warm-hit"
    assert again.timings.cache_hit


def test_unknown_baseline_falls_cold(tmp_path):
    store = ArtifactStore(str(tmp_path))
    inc = analyze(_spec(), store=store, baseline="ab" * 32)
    assert inc.incremental.mode == "cold"
    assert inc.incremental.reason == "baseline-manifest-miss"
    cold = analyze(_spec())
    assert _docs(inc) == _docs(cold)


def test_baseline_equals_program_is_cold_reasoned(tmp_path):
    store = ArtifactStore(str(tmp_path))
    digest = fingerprint_program(_spec().program)
    inc = analyze(_spec(), store=store, baseline=digest)
    assert inc.incremental.mode == "cold"
    assert inc.incremental.reason == "baseline-equals-program"


def test_baseline_without_store_raises():
    with pytest.raises(ValueError, match="artifact store"):
        analyze(_spec(), baseline="ab" * 32)


def test_tampered_region_falls_back_cold_and_stays_correct(tmp_path):
    """A structurally-valid but inconsistent region artifact must trip
    the stitcher and land on the cold path with identical output."""
    store = ArtifactStore(str(tmp_path))
    baseline = fingerprint_program(_spec().program)
    analyze(_spec(), store=store)

    keys = keys_for_spec(
        _spec(), engine="fast", fuel=50_000_000, max_pieces=6, clamp=None,
        track_anti_output=True, build_schedule_tree=True,
    )
    key = keys.region("main")  # the region an assign_points edit reuses
    payload = store.get(key)
    payload["statements"][0]["ord"] = 10**6
    store.put(key, payload)

    inc = analyze(
        edited_spec(_spec(), "assign_points"), store=store, baseline=baseline
    )
    assert inc.incremental.mode == "cold"
    assert inc.incremental.reason.startswith("fallback:")
    cold = analyze(edited_spec(_spec(), "assign_points"))
    assert _docs(inc) == _docs(cold)


def test_missing_region_artifact_joins_frontier(tmp_path):
    """A rgn- miss for a reusable function is an artifact-miss reason,
    not a failure: the function just gets re-instrumented too."""
    store = ArtifactStore(str(tmp_path))
    baseline = fingerprint_program(_spec().program)
    analyze(_spec(), store=store)
    keys = keys_for_spec(
        _spec(), engine="fast", fuel=50_000_000, max_pieces=6, clamp=None,
        track_anti_output=True, build_schedule_tree=True,
    )
    import os

    os.unlink(store.path_of(keys.region("main")))

    inc = analyze(
        edited_spec(_spec(), "assign_points"), store=store, baseline=baseline
    )
    info = inc.incremental
    # every function is on the frontier now -> nothing left to reuse
    assert info.mode == "cold"
    assert info.reason == "frontier-covers-program"
    cold = analyze(edited_spec(_spec(), "assign_points"))
    assert _docs(inc) == _docs(cold)


def test_incr_spans_cover_the_pipeline(tmp_path):
    store = ArtifactStore(str(tmp_path))
    baseline = fingerprint_program(_spec().program)
    analyze(_spec(), store=store)

    tracer = Tracer()
    analyze(
        edited_spec(_spec(), "assign_points"),
        store=store,
        baseline=baseline,
        tracer=tracer,
    )
    tracer.close()
    names = {
        span.name
        for root in tracer.roots
        for _depth, span in root.walk()
    }
    assert {
        "incr.diff", "incr.slice", "incr.load", "incr.stitch", "incr.put",
    } <= names


def test_frontier_violation_when_slice_is_too_small():
    """Deliberately emit only the writer of shared arrays: the slim
    reader observes a real (emitted) ref and must refuse, not drop the
    crossing dependence on the floor."""
    spec = _spec()
    control = profile_control(spec)
    with pytest.raises(FrontierViolation):
        profile_ddg(spec, control, emit_funcs={"assign_points"})


def test_empty_emit_set_runs_violation_free():
    """All-slim execution (the incremental path for an all-unchanged
    diff that still must execute) observes no emitted refs anywhere."""
    spec = _spec()
    control = profile_control(spec)
    ddgp = profile_ddg(spec, control, emit_funcs=set())
    full = profile_ddg(_spec(), profile_control(_spec()))
    # the slim tier still counts every instruction and records the
    # schedule tree -- the byte-identity prerequisites
    assert ddgp.builder.instr_count == full.builder.instr_count
