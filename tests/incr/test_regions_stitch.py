"""Region carving and stitching: a lossless, guarded round trip.

``encode_regions`` must carve a folded DDG so that stitching every
region back (no fresh fold, verbatim context ids) reproduces it
exactly; every inconsistency must raise :class:`IncrementalMismatch`
rather than silently produce a wrong graph.
"""

import pytest

from repro.incr import IncrementalMismatch, encode_regions, stitch_folded
from repro.incr.regions import REGION_FORMAT_VERSION, region_ok, uid_to_ordinal
from repro.pipeline import analyze
from repro.workloads import all_workloads


@pytest.fixture(scope="module")
def kmeans_result():
    return analyze(all_workloads()["kmeans"]())


def test_uid_to_ordinal_total_and_local(kmeans_result):
    program = kmeans_result.spec.program
    ord_of = uid_to_ordinal(program)
    uids = {ins.uid for _f, _b, ins in program.all_instrs()}
    assert set(ord_of) == uids
    for fname, fn in program.functions.items():
        ords = sorted(
            o for (f, o) in ord_of.values() if f == fname
        )
        n = sum(len(bb.instrs) for bb in fn.blocks.values())
        assert ords == list(range(n))


def test_encode_covers_every_function(kmeans_result):
    program = kmeans_result.spec.program
    regions = encode_regions(program, kmeans_result.folded)
    assert set(regions) == set(program.functions)
    assert all(region_ok(p) for p in regions.values())
    total_stmts = sum(len(p["statements"]) for p in regions.values())
    assert total_stmts == len(kmeans_result.folded.statements)
    total_deps = sum(len(p["deps"]) for p in regions.values())
    assert total_deps == len(kmeans_result.folded.deps)


def test_stitch_all_regions_is_identity(kmeans_result):
    """Verbatim-id stitch of every region == the original fold, down
    to iteration order (both sides are canonically ordered)."""
    program = kmeans_result.spec.program
    folded = kmeans_result.folded
    regions = encode_regions(program, folded)
    stitched = stitch_folded(program, None, regions, None)
    assert list(stitched.statements.keys()) == list(folded.statements.keys())
    assert list(stitched.deps.keys()) == list(folded.deps.keys())
    # strongest available equality: re-carving the stitched DDG yields
    # byte-equal region payloads
    assert encode_regions(program, stitched) == regions


def test_format_mismatch_raises(kmeans_result):
    program = kmeans_result.spec.program
    regions = encode_regions(program, kmeans_result.folded)
    regions["main"]["format"] = REGION_FORMAT_VERSION + 1
    with pytest.raises(IncrementalMismatch, match="format"):
        stitch_folded(program, None, regions, None)


def test_ordinal_out_of_range_raises(kmeans_result):
    program = kmeans_result.spec.program
    regions = encode_regions(program, kmeans_result.folded)
    regions["main"]["statements"][0]["ord"] = 10**6
    with pytest.raises(IncrementalMismatch, match="ordinal"):
        stitch_folded(program, None, regions, None)


def test_overlap_with_fresh_raises(kmeans_result):
    """A statement folded fresh AND loaded from a region means the
    slice was wrong -- refuse, do not double-count."""
    program = kmeans_result.spec.program
    folded = kmeans_result.folded
    regions = encode_regions(program, folded)
    with pytest.raises(IncrementalMismatch, match="already folded fresh"):
        stitch_folded(program, folded, regions, None)


def test_unobserved_context_raises(kmeans_result):
    """With a live interning table that never saw the stored contexts,
    the stitch must refuse (the executions diverged)."""
    program = kmeans_result.spec.program
    regions = encode_regions(program, kmeans_result.folded)
    with pytest.raises(IncrementalMismatch, match="context"):
        stitch_folded(program, None, regions, {})


def test_dangling_cross_region_source_raises(kmeans_result):
    """Stitching a single region whose deps reach into other functions
    must fail the dangling-source check."""
    program = kmeans_result.spec.program
    regions = encode_regions(program, kmeans_result.folded)
    lone = {"update_centers": regions["update_centers"]}
    with pytest.raises(IncrementalMismatch):
        stitch_folded(program, None, lone, None)
