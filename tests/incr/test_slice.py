"""Dependence-frontier slicer: one test per closure rule.

The crafted program separates the three channels:

* ``writer``/``reader`` share array ``A`` (may-alias channel);
* ``pure`` reads array ``B``; ``main`` binds and stores its result
  (caller-uses-result channel);
* ``aux`` is pure arithmetic whose bound result ``main`` never reads
  (must NOT propagate).
"""

from repro.incr import (
    append_sink_instr,
    build_manifest,
    compute_frontier,
)
from repro.incr.diff import diff_programs
from repro.isa import ProgramBuilder


def _program(writer_name="writer"):
    pb = ProgramBuilder("slice-t")
    with pb.function(writer_name, ["p"]) as f:
        f.store("p", 1, index=0)
        f.ret()
    with pb.function("reader", ["p"]) as f:
        f.load("p", index=0)
        f.ret()
    with pb.function("pure", ["q"]) as f:
        x = f.load("q", index=0)
        f.ret(x)
    with pb.function("aux", ["n"]) as f:
        r = f.add("n", 1)
        f.ret(r)
    with pb.function("main", ["A", "B", "n"]) as f:
        f.call(writer_name, ["A"])
        f.call("reader", ["A"])
        r = f.call("pure", ["B"], want_result=True)
        f.store("B", r, index=1)
        f.call("aux", ["n"], want_result=True)  # result ignored
        f.halt()
    return pb.build()


def _frontier(base, new):
    diff = diff_programs(base, new)
    return compute_frontier(new, diff, build_manifest(base))


def _rules(frontier, name):
    return [r.rule for r in frontier.reasons[name]]


def test_may_alias_pulls_sharing_function_only():
    base = _program()
    fr = _frontier(base, append_sink_instr(base, "writer"))
    assert fr.funcs == {"writer", "reader"}
    assert _rules(fr, "writer") == ["modified"]
    reasons = fr.reasons["reader"]
    assert reasons[0].rule == "may-alias" and reasons[0].via == "writer"
    assert "arg:0" in reasons[0].detail
    # disjoint array, unused result, no memory: all untouched
    assert {"pure", "aux", "main"}.isdisjoint(fr.affected)


def test_caller_uses_result_pulls_caller_then_callees():
    base = _program()
    fr = _frontier(base, append_sink_instr(base, "pure"))
    assert "main" in fr.funcs
    assert "caller-uses-result" in _rules(fr, "main")
    # main affected => everything it can call inherits its contexts
    assert fr.funcs == {"writer", "reader", "pure", "aux", "main"}
    assert "callee-of-changed" in _rules(fr, "aux")


def test_ignored_result_does_not_propagate():
    base = _program()
    fr = _frontier(base, append_sink_instr(base, "aux"))
    assert fr.funcs == {"aux"}
    assert fr.affected == {"aux"}


def test_removed_function_participates_via_manifest():
    base = _program()
    new = _program(writer_name="scribe")
    fr = _frontier(base, new)
    # the baseline's 'writer' is affected (removed) but cannot be on
    # the re-instrumentation frontier: it no longer exists
    assert "writer" in fr.affected
    assert "writer" not in fr.funcs
    assert fr.funcs <= set(new.functions)
    # its rename twin is re-analyzed as an 'added' function
    assert "added" in _rules(fr, "scribe")
    # and the alias channel still fires off the *baseline* tokens:
    # reader shares A with the removed writer (or with scribe)
    assert "reader" in fr.funcs


def test_as_dict_lists_only_affected():
    base = _program()
    fr = _frontier(base, append_sink_instr(base, "writer"))
    doc = fr.as_dict()
    assert doc["funcs"] == ["reader", "writer"]
    assert set(doc["reasons"]) == {"reader", "writer"}
    assert doc["reasons"]["writer"] == [{"rule": "modified"}]
