"""Program manifests and the static differ.

The differ never sees the baseline *program*, only its manifest: all
classification must come out of the per-function canonical
fingerprints alone.
"""


from repro.incr import (
    MANIFEST_FORMAT_VERSION,
    append_sink_instr,
    build_manifest,
    diff_document,
    diff_manifests,
)
from repro.incr.diff import diff_programs
from repro.incr.manifest import manifest_ok
from repro.isa.program import Function, Program
from repro.workloads import all_workloads


def _kmeans():
    return all_workloads()["kmeans"]().program


def _renumbered(program, offset=1000):
    from repro.incr import renumber_uids

    return renumber_uids(program, offset)


class TestManifest:
    def test_structure(self):
        m = build_manifest(_kmeans())
        assert m["format"] == MANIFEST_FORMAT_VERSION
        assert m["main"] == "main"
        assert len(m["digest"]) == 64
        assert set(m["functions"]) == {
            "main", "assign_points", "update_centers",
        }
        for entry in m["functions"].values():
            assert set(entry) >= {
                "local", "transitive", "params", "entry", "instrs",
                "callees", "blocks", "reads", "writes",
            }
            assert entry["instrs"] > 0
        assert set(m["functions"]["main"]["callees"]) == {
            "assign_points", "update_centers",
        }

    def test_manifest_ok(self):
        m = build_manifest(_kmeans())
        assert manifest_ok(m)
        assert not manifest_ok(None)
        assert not manifest_ok({})
        assert not manifest_ok({**m, "format": MANIFEST_FORMAT_VERSION + 1})


class TestDiff:
    def test_identical_programs_all_unchanged(self):
        diff = diff_programs(_kmeans(), _kmeans())
        assert diff.all_unchanged
        assert diff.changed == []
        assert all(
            st.subtree_clean for st in diff.functions.values()
        )

    def test_uid_renumbering_is_unchanged(self):
        """Global uid renumbering must not look like an edit: the
        canonical fingerprints replace uids with local ordinals."""
        diff = diff_programs(_kmeans(), _renumbered(_kmeans()))
        assert diff.all_unchanged
        assert diff.baseline_digest != diff.program_digest

    def test_one_function_edit_is_modified(self):
        base = _kmeans()
        new = append_sink_instr(base, "assign_points")
        diff = diff_programs(base, new)
        assert diff.changed == ["assign_points"]
        st = diff.functions["assign_points"]
        assert st.status == "modified"
        # the edit touched exactly the entry block
        assert st.blocks_changed == [
            new.functions["assign_points"].entry
        ]
        assert not st.subtree_clean

    def test_callers_of_modified_are_unchanged_but_not_subtree_clean(self):
        base = _kmeans()
        diff = diff_programs(base, append_sink_instr(base, "assign_points"))
        main = diff.functions["main"]
        assert main.status == "unchanged"
        assert not main.subtree_clean  # a callee changed underneath
        other = diff.functions["update_centers"]
        assert other.status == "unchanged"
        assert other.subtree_clean

    def test_added_and_removed(self):
        base = _kmeans()
        new = _kmeans()
        spare = Function(name="spare", params=(), entry="entry")
        bb = spare.add_block("entry")
        from repro.isa.instructions import Return

        bb.terminator = Return()
        new.add_function(spare)
        diff = diff_programs(base, new)
        assert diff.functions["spare"].status == "added"
        back = diff_programs(new, base)
        assert back.functions["spare"].status == "removed"
        assert back.summary()["removed"] == 1

    def test_rename_pairing(self):
        base = _kmeans()
        fn = base.functions["update_centers"]
        renamed_fn = Function(
            name="recenter",
            params=tuple(fn.params),
            entry=fn.entry,
            blocks=dict(fn.blocks),
            src_loop_depth=fn.src_loop_depth,
            src_file=fn.src_file,
        )
        new_functions = {
            n: f for n, f in base.functions.items() if n != "update_centers"
        }
        new_functions["recenter"] = renamed_fn
        # keep 'main' calling the old name: unknown-callee is fine for
        # a manifest (fingerprints stay total over invalid programs)
        new = Program(functions=new_functions, main="main", name=base.name)
        diff = diff_programs(base, new)
        assert diff.functions["recenter"].status == "added"
        assert diff.functions["recenter"].renamed_from == "update_centers"
        assert diff.functions["update_centers"].status == "removed"
        assert diff.functions["update_centers"].renamed_to == "recenter"
        assert diff.summary()["renamed"] == 1

    def test_diff_document_shape(self):
        base = _kmeans()
        diff = diff_programs(base, append_sink_instr(base, "main"))
        doc = diff_document(
            diff, baseline_name="kmeans", program_name="kmeans+edit"
        )
        assert doc["kind"] == "diff"
        assert doc["baseline"]["name"] == "kmeans"
        assert doc["baseline"]["digest"] == diff.baseline_digest
        assert doc["program"]["digest"] == diff.program_digest
        assert doc["summary"]["modified"] == 1
        assert doc["functions"]["main"]["status"] == "modified"
        assert "frontier" not in doc

    def test_diff_manifests_without_programs(self):
        """The differ works off two manifest dicts alone."""
        base = build_manifest(_kmeans())
        new = build_manifest(append_sink_instr(_kmeans(), "main"))
        diff = diff_manifests(base, new)
        assert diff.changed == ["main"]
