"""Parallel suite runner: ordering, timeouts, graceful degradation."""

import pytest

from repro.runner import (
    WorkloadResult,
    render_suite_table,
    run_suite,
    task_name,
)


def slow_factory():
    """Picklable factory that burns CPU before ever returning a spec."""
    while True:
        pass


def boom_factory():
    """Picklable factory that raises."""
    raise RuntimeError("kaboom")


def not_a_spec_factory():
    """Picklable factory that returns the wrong type."""
    return 42


def nn_factory():
    """Picklable factory resolving a real workload spec."""
    from repro.workloads import all_workloads

    return all_workloads()["nn"]()


def test_inline_single_workload():
    (res,) = run_suite(["nn"], jobs=1)
    assert res.ok
    assert res.status() == "ok"
    assert res.name == "nn"
    assert res.engine == "fast"
    assert res.dyn_instrs > 0
    assert res.statements > 0
    assert res.error is None


def test_unknown_workload_is_error_record():
    bad, good = run_suite(["nope", "nn"], jobs=1)
    assert not bad.ok
    assert bad.status() == "error"
    assert "unknown workload 'nope'" in bad.error
    # a failing task does not sink the rest of the suite
    assert good.ok and good.name == "nn"


def test_factory_exception_is_error_record():
    bad, good = run_suite([boom_factory, "nn"], jobs=1)
    assert not bad.ok
    assert bad.name == "boom_factory"
    assert "kaboom" in bad.error
    assert good.ok


def test_factory_bad_return_type_is_error_record():
    (res,) = run_suite([not_a_spec_factory], jobs=1)
    assert not res.ok
    assert "expected ProgramSpec" in res.error


def test_timeout_yields_timeout_record():
    (res,) = run_suite([slow_factory], jobs=1, timeout=0.05)
    assert not res.ok
    assert res.timed_out
    assert res.status() == "timeout"
    assert "timed out after 0.05s" in res.error
    assert res.wall_seconds < 5.0


def test_pool_results_in_submission_order():
    # first task is much slower than the others: with 2 workers the
    # later tasks *complete* first, but results must come back in
    # submission order regardless.
    tasks = ["srad_v2", "nn", boom_factory, "nn"]
    results = run_suite(tasks, jobs=2)
    assert [r.name for r in results] == [
        "srad_v2",
        "nn",
        "boom_factory",
        "nn",
    ]
    assert [r.ok for r in results] == [True, True, False, True]
    assert "kaboom" in results[2].error


def test_pool_timeout_applies_per_workload():
    results = run_suite([slow_factory, "nn"], jobs=2, timeout=0.2)
    assert results[0].timed_out
    assert results[1].ok


def test_with_report():
    (res,) = run_suite(["nn"], jobs=1, with_report=True)
    assert res.ok
    assert "poly-prof feedback: nn" in res.report
    (res,) = run_suite(["nn"], jobs=1, with_report=False)
    assert res.report is None


def test_engine_flag_threaded_through():
    (ref,) = run_suite(["nn"], jobs=1, engine="reference")
    (fast,) = run_suite(["nn"], jobs=1, engine="fast")
    assert ref.engine == "reference"
    assert (ref.dyn_instrs, ref.statements, ref.deps, ref.plans) == (
        fast.dyn_instrs,
        fast.statements,
        fast.deps,
        fast.plans,
    )


def test_task_name():
    assert task_name("lud") == "lud"
    assert task_name(boom_factory) == "boom_factory"


def test_render_suite_table():
    results = [
        WorkloadResult(
            name="nn",
            ok=True,
            wall_seconds=0.5,
            dyn_instrs=100,
            statements=3,
            deps=2,
            plans=1,
        ),
        WorkloadResult(name="bad", ok=False, error="boom"),
    ]
    table = render_suite_table(results)
    assert "nn" in table and "boom" in table
    assert "1/2 workloads analyzed" in table


@pytest.mark.parametrize(
    "kwargs,expected",
    [
        ({"ok": True}, "ok"),
        ({"ok": False, "timed_out": True}, "timeout"),
        ({"ok": False}, "error"),
    ],
)
def test_status(kwargs, expected):
    assert WorkloadResult(name="x", **kwargs).status() == expected
