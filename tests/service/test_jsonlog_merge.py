"""jsonlog: (ts, pid, seq) total order, merge determinism, drops.

A multi-replica deployment produces one JSON-lines log per process;
following a request end-to-end means merging them.  These tests pin
the merge key contract: every line carries ``pid`` and a per-process
monotonic ``seq``, :func:`merge_records` orders any interleaving of
the same lines identically, and lines lost to encode/write failures
are counted, never raised.
"""

import io
import json
import os
import random
import threading

from repro.service.jsonlog import (
    JsonLogger,
    NullLogger,
    dropped_lines,
    merge_records,
)


def capture_lines(logger_level="debug"):
    stream = io.StringIO()
    return JsonLogger(stream=stream, level=logger_level), stream


def records_of(stream):
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
        if line
    ]


class TestRecordFields:
    def test_every_line_carries_pid_and_seq(self):
        logger, stream = capture_lines()
        logger.info("a")
        logger.info("b")
        for record in records_of(stream):
            assert record["pid"] == os.getpid()
            assert isinstance(record["seq"], int)

    def test_seq_is_strictly_increasing_per_process(self):
        logger, stream = capture_lines()
        for i in range(20):
            logger.info("tick", i=i)
        seqs = [r["seq"] for r in records_of(stream)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_seq_unique_across_threads(self):
        logger, stream = capture_lines()

        def spam():
            for _ in range(50):
                logger.info("t")

        threads = [threading.Thread(target=spam) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [r["seq"] for r in records_of(stream)]
        assert len(seqs) == 200
        assert len(set(seqs)) == 200

    def test_bound_context_and_fields_survive(self):
        logger, stream = capture_lines()
        logger.bind(job="j-1", trace_id="a" * 32).info(
            "job_start", worker=0
        )
        (record,) = records_of(stream)
        assert record["job"] == "j-1"
        assert record["trace_id"] == "a" * 32
        assert record["worker"] == 0
        assert record["event"] == "job_start"


class TestMergeRecords:
    def make_log(self, pid, count, ts):
        return [
            {"ts": ts, "pid": pid, "seq": seq, "event": f"p{pid}-{seq}"}
            for seq in range(1, count + 1)
        ]

    def test_merge_is_deterministic_under_shuffling(self):
        lines = (
            self.make_log(100, 10, ts=5.0)
            + self.make_log(200, 10, ts=5.0)
            + self.make_log(100, 5, ts=4.0)
        )
        reference = merge_records(lines)
        rng = random.Random(7)
        for _ in range(10):
            shuffled = list(lines)
            rng.shuffle(shuffled)
            assert merge_records(shuffled) == reference

    def test_wall_clock_orders_across_processes(self):
        early = {"ts": 1.0, "pid": 900, "seq": 1, "event": "early"}
        late = {"ts": 2.0, "pid": 100, "seq": 1, "event": "late"}
        assert merge_records([late, early]) == [early, late]

    def test_seq_breaks_timestamp_ties_within_a_process(self):
        a = {"ts": 3.0, "pid": 7, "seq": 2, "event": "second"}
        b = {"ts": 3.0, "pid": 7, "seq": 1, "event": "first"}
        assert merge_records([a, b]) == [b, a]

    def test_foreign_lines_do_not_raise(self):
        foreign = {"event": "no-ts-no-pid"}
        ours = {"ts": 1.0, "pid": 1, "seq": 1, "event": "ok"}
        merged = merge_records([ours, foreign])
        assert merged[0] is foreign

    def test_two_replica_interleave(self):
        # simulate two replicas whose files were concatenated in
        # opposite orders: the merges must agree line for line
        replica_a = self.make_log(111, 20, ts=9.0)
        replica_b = self.make_log(222, 20, ts=9.0)
        assert merge_records(replica_a + replica_b) == merge_records(
            replica_b + replica_a
        )


class TestDroppedLines:
    def test_write_failure_counts_not_raises(self):
        class DeadStream(io.StringIO):
            def write(self, _):
                raise OSError("broken pipe")

        logger = JsonLogger(stream=DeadStream(), level="info")
        before = dropped_lines()
        logger.info("doomed")
        logger.info("doomed_again")
        assert dropped_lines() == before + 2

    def test_encode_failure_emits_fallback_and_counts(self):
        logger, stream = capture_lines()
        circular = {}
        circular["self"] = circular
        before = dropped_lines()
        logger.info("bad_payload", payload=circular)
        assert dropped_lines() == before + 1
        (record,) = records_of(stream)
        assert record["event"] == "log_encode_failed"
        assert record["original_event"] == "bad_payload"
        assert record["pid"] == os.getpid()
        assert isinstance(record["seq"], int)

    def test_null_logger_emits_nothing(self):
        before = dropped_lines()
        NullLogger().error("ignored")
        assert dropped_lines() == before
