"""Shared fixtures for the analysis-service tests.

Everything runs against a *live* daemon on an ephemeral loopback port:
these are end-to-end tests of the HTTP surface, not of the Python
objects behind it.
"""

import contextlib

import pytest

from repro.isa import Memory, ProgramBuilder
from repro.isa.progjson import encode_program, encode_state
from repro.service import AnalysisService, ServiceClient, ServiceConfig


def counting_loop_docs(iters, cells=1, name="inline_loop"):
    """(program_doc, state_doc) for an inline workload that executes
    ~``iters`` loop iterations -- the knob the limit tests use to make
    jobs exactly as slow as they need.  Distinct ``iters`` values have
    distinct content fingerprints, so they never dedup onto each other.
    """
    pb = ProgramBuilder(name)
    with pb.function("main", ["a", "n"]) as f:
        with f.loop(0, "n") as i:
            v = f.load("a", index=0)
            f.store("a", f.add(v, 1), index=0)
            f.store("a", i, index=0)
        f.halt()
    program = pb.build()
    memory = Memory()
    base = memory.alloc(cells, 0)
    return encode_program(program), encode_state([base, iters], memory)


class LiveService:
    """A started daemon plus a client, torn down uncleanly-safe."""

    def __init__(self, service, client):
        self.service = service
        self.client = client


@pytest.fixture
def make_service():
    """Factory fixture: ``make_service(workers=1, ...)`` boots a daemon
    on port 0 and returns a :class:`LiveService`; everything started is
    drained on teardown (cancelling any still-running jobs)."""
    started = []

    def _make(**overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("workers", 1)
        overrides.setdefault("log_level", "error")
        service = AnalysisService(ServiceConfig(**overrides))
        host, port = service.start()
        started.append(service)
        return LiveService(service, ServiceClient(host, port))

    yield _make

    for service in started:
        # cancel whatever is still in flight so teardown is quick
        for job in service.registry.jobs():
            job.cancel_event.set()
        with contextlib.suppress(Exception):
            service.shutdown(grace=0.2)


@pytest.fixture
def make_router():
    """Factory fixture: ``make_router([live1, live2], ...)`` boots a
    consistent-hash router over already-started daemons and returns a
    :class:`LiveService` whose client talks through the router."""
    from repro.service.router import AnalysisRouter, RouterConfig

    started = []

    def _make(replicas, **overrides):
        overrides.setdefault("port", 0)
        overrides.setdefault("log_level", "error")
        overrides.setdefault("health_interval", 0.1)
        nodes = [
            f"{live.service.host}:{live.service.port}" for live in replicas
        ]
        router = AnalysisRouter(RouterConfig(replicas=nodes, **overrides))
        host, port = router.start()
        started.append(router)
        return LiveService(router, ServiceClient(host, port))

    yield _make

    for router in started:
        with contextlib.suppress(Exception):
            router.shutdown()
