"""Unit tests for the service building blocks (no sockets)."""

import io
import json
import threading

import pytest

from repro.service import (
    BoundedJobQueue,
    Job,
    JobOptions,
    JobRegistry,
    JobState,
    MetricsRegistry,
    QueueFull,
    parse_samples,
)
from repro.service.jsonlog import JsonLogger


def _job(key="k" * 64, job_id="j000001-kkkkkkkk"):
    return Job(
        id=job_id, key=key, workload="w", spec=None, options=JobOptions()
    )


class TestBoundedJobQueue:
    def test_fifo_and_positions(self):
        q = BoundedJobQueue(3)
        a, b = _job(job_id="a"), _job(job_id="b")
        assert q.put(a) == 0
        assert q.put(b) == 1
        assert q.position(b) == 1
        assert len(q) == 2
        assert q.get(timeout=0.1) is a
        assert q.position(b) == 0

    def test_put_full_raises_not_blocks(self):
        q = BoundedJobQueue(1)
        q.put(_job(job_id="a"))
        with pytest.raises(QueueFull) as err:
            q.put(_job(job_id="b"))
        assert err.value.depth == 1

    def test_get_timeout_returns_none(self):
        q = BoundedJobQueue(1)
        assert q.get(timeout=0.01) is None

    def test_remove_and_drain(self):
        q = BoundedJobQueue(4)
        a, b, c = (_job(job_id=x) for x in "abc")
        for j in (a, b, c):
            q.put(j)
        assert q.remove(b) is True
        assert q.remove(b) is False
        assert q.drain() == [a, c]
        assert len(q) == 0


class TestJobTransitions:
    def test_transition_is_atomic_gate(self):
        job = _job()
        assert job.transition((JobState.QUEUED,), JobState.RUNNING)
        assert job.started_at is not None
        # a stale cancel loses the race cleanly
        assert not job.transition((JobState.QUEUED,), JobState.CANCELLED)
        assert job.transition((JobState.RUNNING,), JobState.DONE)
        assert job.finished_at is not None
        assert job.terminal

    def test_status_doc_shape(self):
        doc = _job().status_doc(1)
        assert doc["version"] == 1
        assert doc["state"] == "queued"
        assert doc["options"]["engine"] == "fast"
        assert doc["cache"] == {
            "stage1_cached": False,
            "stage2_cached": False,
            "hit": False,
        }


class TestJobRegistry:
    def test_dedup_absorbs_live_and_done(self):
        reg = JobRegistry()
        job, deduped = reg.submit("k1", lambda jid: _job(job_id=jid))
        assert not deduped
        again, deduped = reg.submit("k1", lambda jid: _job(job_id=jid))
        assert deduped and again is job
        job.transition((JobState.QUEUED,), JobState.RUNNING)
        job.transition((JobState.RUNNING,), JobState.DONE)
        done, deduped = reg.submit("k1", lambda jid: _job(job_id=jid))
        assert deduped and done is job

    def test_failed_jobs_are_replaced(self):
        reg = JobRegistry()
        job, _ = reg.submit("k1", lambda jid: _job(job_id=jid))
        job.transition((JobState.QUEUED,), JobState.CANCELLED)
        fresh, deduped = reg.submit("k1", lambda jid: _job(job_id=jid))
        assert not deduped and fresh is not job

    def test_retention_evicts_terminal_only(self):
        reg = JobRegistry(retain=2)
        keep, _ = reg.submit("live", lambda jid: _job(job_id=jid))
        for n in range(4):
            job, _ = reg.submit(f"k{n}", lambda jid: _job(job_id=jid))
            job.transition((JobState.QUEUED,), JobState.RUNNING)
            job.transition((JobState.RUNNING,), JobState.DONE)
        # the live job survives even though it is the oldest
        assert reg.get(keep.id) is keep
        assert len(reg.jobs()) <= 3  # live + at most retain terminal

    def test_ids_are_sequential_and_keyed(self):
        reg = JobRegistry()
        job, _ = reg.submit("a" * 64, lambda jid: _job(job_id=jid))
        assert job.id == f"j000001-{'a' * 8}"


class TestMetrics:
    def test_render_and_parse_round_trip(self):
        m = MetricsRegistry()
        c = m.counter("t_total", "things")
        g = m.gauge("t_gauge", "level")
        h = m.histogram("t_seconds", "latency", buckets=(0.1, 1.0))
        c.inc()
        c.inc(2)
        g.set(7)
        h.observe(0.05)
        h.observe(5.0)
        text = m.render()
        assert "# TYPE t_total counter" in text
        assert "# TYPE t_seconds histogram" in text
        samples = parse_samples(text)
        assert samples["t_total"] == 3
        assert samples["t_gauge"] == 7
        assert samples['t_seconds_bucket{le="0.1"}'] == 1
        assert samples['t_seconds_bucket{le="+Inf"}'] == 2
        assert samples["t_seconds_count"] == 2
        assert samples["t_seconds_sum"] == 5.05

    def test_duplicate_metric_rejected(self):
        m = MetricsRegistry()
        m.counter("dup_total", "x")
        with pytest.raises(ValueError, match="duplicate"):
            m.counter("dup_total", "y")

    def test_thread_safety_of_counters(self):
        m = MetricsRegistry()
        c = m.counter("hammer_total", "x")

        def _spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=_spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestJsonLogger:
    def test_lines_are_json_with_bound_context(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream, level="debug").bind(service="t")
        log.info("hello", answer=42)
        log.bind(worker=3).warning("late")
        lines = [json.loads(x) for x in stream.getvalue().splitlines()]
        assert lines[0]["event"] == "hello"
        assert lines[0]["level"] == "info"
        assert lines[0]["service"] == "t"
        assert lines[0]["answer"] == 42
        assert lines[1]["worker"] == 3

    def test_level_filtering(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream, level="warning")
        log.debug("nope")
        log.info("nope")
        log.error("yes")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["level"] == "error"

    def test_unserializable_values_never_raise(self):
        stream = io.StringIO()
        log = JsonLogger(stream=stream)
        log.info("odd", thing=object())
        (line,) = stream.getvalue().splitlines()
        assert json.loads(line)["event"] == "odd"
