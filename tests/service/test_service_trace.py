"""Service observability: the trace artifact, span-derived metrics,
and progress heartbeats -- over a live loopback socket."""

import json

import pytest

from repro.obs import validate_chrome_trace
from repro.service import ServiceError, parse_samples

from .conftest import counting_loop_docs


class TestTraceEndpoint:
    def test_trace_artifact_is_valid_chrome_trace(self, make_service):
        live = make_service()
        sub = live.client.submit(workload="nn")
        live.client.wait(sub["job"])
        doc = json.loads(live.client.trace(sub["job"]).decode("utf-8"))
        assert validate_chrome_trace(doc) > 0
        assert doc["otherData"]["workload"] == "nn"
        names = {
            e["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        assert {"analyze", "instr1", "instr2_fold", "feedback"} <= names

    def test_trace_before_done_conflicts(self, make_service):
        live = make_service()
        program, state = counting_loop_docs(400_000, name="busy_trace")
        sub = live.client.submit(program=program, state=state)
        with pytest.raises(ServiceError) as err:
            live.client.trace(sub["job"])
        assert err.value.status == 409
        live.client.cancel(sub["job"])


class TestSpanDerivedTimings:
    def test_status_doc_total_and_timings_from_spans(self, make_service):
        live = make_service()
        sub = live.client.submit(workload="nn")
        status = live.client.wait(sub["job"])
        total = status["total_seconds"]
        assert total is not None and total > 0
        # the stage split is derived from span boundaries, so the
        # parts sum (almost) exactly to the span-derived total; the
        # crosscheck-free case has a single root span
        parts = sum(status["timings"].values())
        assert parts == pytest.approx(total, rel=1e-6, abs=1e-6)
        # and the total is contained in the coarser wall-clock window
        assert total <= status["wall_seconds"] + 0.5

    def test_job_histogram_observes_span_total(self, make_service):
        live = make_service()
        sub = live.client.submit(workload="nn")
        status = live.client.wait(sub["job"])
        samples = parse_samples(live.client.service_metrics())
        assert samples["repro_service_job_seconds_sum"] == pytest.approx(
            status["total_seconds"], rel=1e-6
        )
        assert samples[
            "repro_service_stage_instr1_seconds_sum"
        ] == pytest.approx(status["timings"]["instr1"], rel=1e-6)


class TestProgressHeartbeats:
    def test_terminal_doc_records_final_progress(self, make_service):
        live = make_service()
        sub = live.client.submit(workload="nn")
        status = live.client.wait(sub["job"])
        progress = status["progress"]
        assert progress["phase"] == "done"
        assert progress["dyn_instrs"] > 0
        assert progress["updated_at"] >= status["started_at"]

    def test_running_job_heartbeats_phase(self, make_service):
        live = make_service()
        program, state = counting_loop_docs(400_000, name="hb_loop")
        sub = live.client.submit(program=program, state=state)
        phases = set()
        try:
            for _ in range(2_000):
                doc = live.client.job(sub["job"])
                phases.update(
                    p for p in [doc.get("progress", {}).get("phase")] if p
                )
                if doc["state"] != "running" and doc["state"] != "queued":
                    break
        finally:
            live.client.cancel(sub["job"])
        # the on_phase callback surfaced at least the pipeline root
        # while the job was in flight
        assert phases & {"analyze", "instr1", "instr2_fold", "feedback",
                         "done"}
