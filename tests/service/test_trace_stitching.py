"""End-to-end distributed-trace stitching over live daemons.

The tentpole contract: one ``trace_id`` follows a request from the
front door through queueing, execution (worker thread *or* worker
process), sweep fan-out, and routing -- and ``GET
/v1/traces/{trace_id}`` serves the whole thing back as one valid
multi-lane Chrome trace.  These tests drive real sockets and, for the
process-mode cases, real forked workers.
"""

import json
import os
import time

from repro.obs import validate_chrome_trace
from repro.obs.context import new_trace_context

from .conftest import counting_loop_docs

SWEEP = [{"n": 8}, {"n": 10}, {"n": 12}]

#: canonical phase order a job progresses through (prefixes allowed)
PHASE_ORDER = ["analyze", "instr1", "instr2_fold", "feedback", "done"]


def _submit_loop(client, iters, **kwargs):
    program, state = counting_loop_docs(iters, name=f"stitch_{iters}")
    return client.submit(program=program, state=state, **kwargs)


def _span_names(doc):
    return {
        e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"
    }


def _lane_labels(doc):
    return {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }


class TestDaemonStitching:
    def test_submission_mints_trace_and_serves_it_stitched(
        self, make_service
    ):
        live = make_service()
        sub = live.client.submit(workload="nn")
        trace_id = sub["trace_id"]
        assert len(trace_id) == 32
        int(trace_id, 16)
        status = live.client.wait(sub["job"])
        assert status["trace_id"] == trace_id
        doc = live.client.stitched_trace(trace_id)
        assert validate_chrome_trace(doc, multi_process=True) > 0
        assert doc["otherData"]["trace_id"] == trace_id
        assert {"analyze", "instr1", "instr2_fold"} <= _span_names(doc)

    def test_inbound_traceparent_is_adopted(self, make_service):
        live = make_service()
        ctx = new_trace_context()
        sub = _submit_loop(
            live.client, 40_000, traceparent=ctx.to_traceparent()
        )
        assert sub["trace_id"] == ctx.trace_id
        live.client.wait(sub["job"])
        doc = live.client.stitched_trace(ctx.trace_id)
        roots = [
            e for e in doc["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "analyze"
        ]
        assert roots
        # the executed pipeline's root span parents under the caller's
        # span: that linkage is what stitches cross-process forests
        assert all(
            e["args"].get("parent_id") == ctx.span_id for e in roots
        )

    def test_malformed_traceparent_mints_fresh(self, make_service):
        live = make_service()
        sub = _submit_loop(
            live.client, 41_000, traceparent="not-a-traceparent"
        )
        assert len(sub["trace_id"]) == 32

    def test_dedup_keeps_the_existing_jobs_trace(self, make_service):
        live = make_service()
        first = _submit_loop(live.client, 42_000)
        second = _submit_loop(
            live.client,
            42_000,
            traceparent=new_trace_context().to_traceparent(),
        )
        assert second["deduplicated"] is True
        assert second["trace_id"] == first["trace_id"]

    def test_unknown_trace_is_404(self, make_service):
        live = make_service()
        status, _, _ = live.client.request_raw(
            "GET", "/v1/traces/" + "d" * 32
        )
        assert status == 404

    def test_segments_endpoint_serves_raw_segments(self, make_service):
        live = make_service()
        sub = live.client.submit(workload="nn")
        live.client.wait(sub["job"])
        status, _, raw = live.client.request_raw(
            "GET", f"/v1/traces/{sub['trace_id']}/segments"
        )
        assert status == 200
        doc = json.loads(raw.decode("utf-8"))
        assert doc["trace_id"] == sub["trace_id"]
        (segment,) = doc["segments"]
        assert segment["source"] == "daemon"
        assert segment["job_id"] == sub["job"]
        assert segment["spans"]
        assert {"epoch", "perf"} <= set(segment["clock"])


class TestProcessModeStitching:
    def test_worker_process_gets_its_own_lane(self, make_service):
        live = make_service(execution="process")
        sub = live.client.submit(workload="nn")
        live.client.wait(sub["job"], timeout=60)
        doc = live.client.stitched_trace(sub["trace_id"])
        assert validate_chrome_trace(doc, multi_process=True) > 0
        sources = doc["otherData"]["sources"]
        # the executing pid is the forked pool worker's, not the
        # daemon's (which in these tests is the pytest process)
        worker_pids = {s["pid"] for s in sources}
        assert worker_pids
        assert os.getpid() not in worker_pids
        assert any(
            f"(pid {pid})" in label
            for pid in worker_pids
            for label in _lane_labels(doc)
        )
        assert "analyze" in _span_names(doc)


class TestSweepStitching:
    def test_sweep_children_join_the_parent_trace(
        self, make_service, tmp_path
    ):
        live = make_service(workers=2, cache_dir=str(tmp_path / "c"))
        sub = live.client.submit(workload="nw", sweep=SWEEP)
        trace_id = sub["trace_id"]
        status = live.client.wait(sub["job"], timeout=120)
        assert status["trace_id"] == trace_id
        # every fanned-out child job carries the parent's trace id
        children = status["sweep"]["children"]
        assert len(children) == 3
        for child_id in children:
            child = live.client.wait(child_id, timeout=120)
            assert child["trace_id"] == trace_id
        doc = live.client.stitched_trace(trace_id)
        assert validate_chrome_trace(doc, multi_process=True) > 0
        names = _span_names(doc)
        assert "sweep.merge" in names  # the parent's merge phase
        assert "analyze" in names  # the children's pipelines


class TestRouterStitching:
    def test_router_aggregates_replica_segments(
        self, make_service, make_router
    ):
        replicas = [make_service(), make_service()]
        cluster = make_router(replicas)
        sub = _submit_loop(cluster.client, 43_000)
        trace_id = sub["trace_id"]
        cluster.client.wait(sub["job"], timeout=60)
        doc = cluster.client.stitched_trace(trace_id)
        assert validate_chrome_trace(doc, multi_process=True) > 0
        sources = {s["source"] for s in doc["otherData"]["sources"]}
        assert "router" in sources
        assert "daemon" in sources
        names = _span_names(doc)
        assert {"route.submit", "route.forward"} <= names
        assert "analyze" in names

    def test_routed_sweep_spans_every_layer(
        self, make_service, make_router, tmp_path
    ):
        replicas = [
            make_service(workers=2, cache_dir=str(tmp_path / "a")),
            make_service(workers=2, cache_dir=str(tmp_path / "b")),
        ]
        cluster = make_router(replicas)
        sub = cluster.client.submit(workload="nw", sweep=SWEEP)
        trace_id = sub["trace_id"]
        status = cluster.client.wait(sub["job"], timeout=120)
        assert status["trace_id"] == trace_id
        doc = cluster.client.stitched_trace(trace_id)
        assert validate_chrome_trace(doc, multi_process=True) > 0
        names = _span_names(doc)
        # router hop, parent sweep merge, and child pipelines all on
        # one time axis
        assert "route.forward" in names
        assert "sweep.merge" in names
        assert "analyze" in names
        sources = {s["source"] for s in doc["otherData"]["sources"]}
        assert {"router", "daemon"} <= sources


class TestHeartbeatOrdering:
    def test_procpool_phases_arrive_in_order_with_trace_id(
        self, make_service
    ):
        """Heartbeats cross the procpool evt pipe FIFO: the phases a
        poller observes must only ever move forward through the
        pipeline, and every polled doc names the submission's trace."""
        live = make_service(execution="process")
        sub = _submit_loop(live.client, 60_000)
        observed = []
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            doc = live.client.job(sub["job"])
            assert doc["trace_id"] == sub["trace_id"]
            phase = doc.get("progress", {}).get("phase")
            if phase:
                observed.append(phase)
            if doc["state"] in ("done", "failed", "timeout"):
                break
            time.sleep(0.005)
        assert doc["state"] == "done", doc.get("error")
        assert observed, "never observed a phase heartbeat"
        known = [p for p in observed if p in PHASE_ORDER]
        indexes = [PHASE_ORDER.index(p) for p in known]
        assert indexes == sorted(indexes), (
            f"phases went backwards: {observed}"
        )
        assert observed[-1] == "done"
