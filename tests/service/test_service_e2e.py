"""End-to-end service tests over a live loopback socket."""

import json
import threading

import pytest

from repro.cli import main
from repro.service import SERVICE_API_VERSION, ServiceError, parse_samples

from .conftest import counting_loop_docs


class TestAnalyzeRoundTrip:
    def test_submit_poll_fetch(self, make_service):
        live = make_service()
        sub = live.client.submit(workload="nn")
        assert sub["version"] == SERVICE_API_VERSION
        assert sub["workload"] == "nn"
        assert sub["deduplicated"] is False
        status = live.client.wait(sub["job"])
        assert status["state"] == "done"
        assert status["summary"]["dyn_instrs"] > 0
        assert status["wall_seconds"] > 0
        assert set(status["timings"]) >= {
            "instr1", "instr2_fold", "feedback",
        }
        report = json.loads(live.client.report(sub["job"]))
        assert report["version"] >= 1
        assert report["kind"] == "report"
        assert report["workload"] == "nn"
        metrics = json.loads(live.client.metrics_doc(sub["job"]))
        assert metrics["kind"] == "metrics"
        svg = live.client.flamegraph(sub["job"])
        assert svg.startswith(b"<svg")

    def test_report_bytes_identical_to_cli_json(
        self, make_service, capsys
    ):
        """The service must serve the exact bytes ``repro report --format
        json`` prints -- one renderer, no drift."""
        live = make_service()
        status, report = live.client.analyze(workload="nn")
        assert status["state"] == "done"
        assert main(["report", "nn", "--format", "json"]) == 0
        assert report.decode("utf-8") == capsys.readouterr().out

        metrics = live.client.metrics_doc(status["job"])
        assert main(["metrics", "nn", "--format", "json"]) == 0
        assert metrics.decode("utf-8") == capsys.readouterr().out

    def test_inline_program_submission(self, make_service):
        live = make_service()
        program, state = counting_loop_docs(64, name="tiny_inline")
        sub = live.client.submit(
            program=program, state=state, name="tiny_inline"
        )
        status = live.client.wait(sub["job"])
        assert status["state"] == "done"
        assert status["inline"] is True
        assert status["workload"] == "tiny_inline"
        assert status["summary"]["dyn_instrs"] > 64

    def test_artifacts_before_done_conflict(self, make_service):
        live = make_service()
        program, state = counting_loop_docs(400_000, name="busy")
        sub = live.client.submit(program=program, state=state)
        with pytest.raises(ServiceError) as err:
            live.client.report(sub["job"])
        assert err.value.status == 409
        assert err.value.doc["state"] in ("queued", "running")
        live.client.cancel(sub["job"])


class TestDedup:
    def test_identical_requests_coalesce(self, make_service):
        live = make_service(workers=2)
        first = live.client.submit(workload="nn")
        second = live.client.submit(workload="nn")
        assert second["job"] == first["job"]
        assert second["deduplicated"] is True
        live.client.wait(first["job"])
        # done jobs keep absorbing identical requests
        third = live.client.submit(workload="nn")
        assert third["job"] == first["job"]
        samples = parse_samples(live.client.service_metrics())
        assert samples["repro_service_jobs_executed_total"] == 1
        assert samples["repro_service_jobs_deduped_total"] == 2

    def test_concurrent_identical_submissions_run_once(
        self, make_service
    ):
        live = make_service(workers=2, queue_depth=32)
        n_clients = 8
        barrier = threading.Barrier(n_clients)
        subs = [None] * n_clients
        errors = []

        def _submit(i):
            try:
                barrier.wait()
                subs[i] = live.client.submit(workload="nn")
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=_submit, args=(i,))
            for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        job_ids = {s["job"] for s in subs}
        assert len(job_ids) == 1
        assert sum(s["deduplicated"] for s in subs) == n_clients - 1
        live.client.wait(job_ids.pop())
        samples = parse_samples(live.client.service_metrics())
        assert samples["repro_service_jobs_executed_total"] == 1

    def test_different_options_do_not_coalesce(self, make_service):
        live = make_service(workers=2)
        plain = live.client.submit(workload="nn")
        checked = live.client.submit(workload="nn", crosscheck=True)
        assert checked["job"] != plain["job"]
        status = live.client.wait(checked["job"])
        assert status["crosscheck_violations"] == 0


class TestObservability:
    def test_healthz(self, make_service):
        live = make_service()
        doc = live.client.health()
        assert doc["_http_status"] == 200
        assert doc["status"] == "ok"
        assert doc["workers"] == 1
        assert doc["queue_capacity"] == 16

    def test_metrics_counters_add_up(self, make_service, tmp_path):
        live = make_service(cache_dir=str(tmp_path / "cache"))
        live.client.analyze(workload="nn")
        sub = live.client.submit(workload="nn")  # dedup, no execution
        assert sub["deduplicated"] is True
        samples = parse_samples(live.client.service_metrics())
        assert samples["repro_service_jobs_submitted_total"] == 2
        assert samples["repro_service_jobs_deduped_total"] == 1
        assert samples["repro_service_jobs_executed_total"] == 1
        assert samples["repro_service_jobs_completed_total"] == 1
        assert samples["repro_service_jobs_failed_total"] == 0
        assert samples["repro_service_job_seconds_count"] == 1
        assert samples["repro_service_job_seconds_sum"] > 0
        assert samples["repro_service_workers"] == 1
        assert samples["repro_service_queue_depth"] == 0
        # cp- + ddg- + man- manifest + one rgn- region per function
        from repro.workloads import registry

        n_funcs = len(registry()["nn"]().program.functions)
        assert samples["repro_service_store_puts"] == 3 + n_funcs
        assert samples["repro_service_store_misses"] == 2
        assert samples["repro_service_http_requests_total"] > 0

    def test_warm_hit_counted(self, make_service, tmp_path):
        cache = str(tmp_path / "cache")
        cold = make_service(cache_dir=cache)
        cold.client.analyze(workload="nn")
        cold.service.shutdown(grace=5)

        warm = make_service(cache_dir=cache)
        status, _ = warm.client.analyze(workload="nn")
        assert status["cache"]["hit"] is True
        samples = parse_samples(warm.client.service_metrics())
        assert samples["repro_service_jobs_warm_hits_total"] == 1
        assert samples["repro_service_store_hits"] == 2


class TestHttpErrors:
    def test_unknown_routes(self, make_service):
        live = make_service()
        for path in ("/nope", "/v1/jobs", "/v1/jobs/x/y/z"):
            status, _, _ = live.client.request_raw("GET", path)
            assert status == 404

    def test_unknown_job(self, make_service):
        live = make_service()
        with pytest.raises(ServiceError) as err:
            live.client.job("j999999-deadbeef")
        assert err.value.status == 404

    def test_bad_submissions(self, make_service):
        live = make_service()
        cases = [
            {},  # neither workload nor program
            {"workload": "nn", "program": {"progjson": 1}},  # both
            {"workload": "no_such_workload"},
            {"workload": "nn", "engine": "quantum"},
            {"workload": "nn", "timeout": -1},
            {"program": {"progjson": 99, "functions": []}},
        ]
        for body in cases:
            with pytest.raises(ServiceError) as err:
                live.client.submit(**body)
            assert err.value.status == 400, body

    def test_non_json_body_rejected(self, make_service):
        live = make_service()
        import http.client

        conn = http.client.HTTPConnection(
            live.client.host, live.client.port, timeout=10
        )
        try:
            conn.request("POST", "/v1/analyze", body=b"not json {")
            resp = conn.getresponse()
            assert resp.status == 400
            resp.read()
        finally:
            conn.close()

    def test_http_error_counter(self, make_service):
        live = make_service()
        live.client.request_raw("GET", "/nope")
        samples = parse_samples(live.client.service_metrics())
        assert samples["repro_service_http_errors_total"] >= 1


class TestIncremental:
    """``baseline_fingerprint`` on POST /v1/analyze."""

    @staticmethod
    def _edited_kmeans_docs():
        from repro.incr import append_sink_instr
        from repro.isa.progjson import encode_program, encode_state
        from repro.workloads import registry

        spec = registry()["kmeans"]()
        program = append_sink_instr(spec.program, "assign_points")
        return (
            encode_program(program),
            encode_state(*spec.make_state()),
        )

    def test_incremental_job_reports_account_and_matches_cold(
        self, make_service, tmp_path
    ):
        from repro.isa import fingerprint_program
        from repro.workloads import registry

        live = make_service(cache_dir=str(tmp_path / "cache"))
        live.client.analyze(workload="kmeans")  # warm the baseline

        baseline = fingerprint_program(registry()["kmeans"]().program)
        program, state = self._edited_kmeans_docs()
        sub = live.client.submit(
            program=program,
            state=state,
            name="kmeans-edit",
            baseline_fingerprint=baseline,
        )
        status = live.client.wait(sub["job"])
        assert status["state"] == "done"
        assert status["options"]["baseline"] == baseline
        inc = status["incremental"]
        assert inc["mode"] == "incremental"
        assert set(inc["frontier"]) == {"assign_points", "update_centers"}
        assert inc["regions_reused"] == 1
        inc_report = live.client.report(sub["job"])

        # a cold service without the baseline serves identical bytes
        cold = make_service(cache_dir=str(tmp_path / "cold"))
        cold_sub = cold.client.submit(
            program=program, state=state, name="kmeans-edit"
        )
        cold_status = cold.client.wait(cold_sub["job"])
        assert "incremental" not in cold_status
        assert cold.client.report(cold_sub["job"]) == inc_report

    def test_baseline_coalesces_with_cold_request(
        self, make_service, tmp_path
    ):
        """baseline is excluded from the job key: same program, with
        and without a baseline, is the same work."""
        from repro.isa import fingerprint_program
        from repro.workloads import registry

        live = make_service(cache_dir=str(tmp_path / "cache"))
        baseline = fingerprint_program(registry()["kmeans"]().program)
        program, state = self._edited_kmeans_docs()
        first = live.client.submit(program=program, state=state, name="e")
        live.client.wait(first["job"])
        second = live.client.submit(
            program=program,
            state=state,
            name="e",
            baseline_fingerprint=baseline,
        )
        assert second["deduplicated"] is True
        assert second["job"] == first["job"]

    def test_malformed_baseline_rejected(self, make_service, tmp_path):
        live = make_service(cache_dir=str(tmp_path / "cache"))
        with pytest.raises(ServiceError) as err:
            live.client.submit(
                workload="kmeans", baseline_fingerprint="not-hex"
            )
        assert err.value.status == 400

    def test_baseline_without_store_rejected(self, make_service):
        live = make_service()  # no cache_dir -> no artifact store
        with pytest.raises(ServiceError) as err:
            live.client.submit(
                workload="kmeans", baseline_fingerprint="ab" * 32
            )
        assert err.value.status == 400
