"""Service sweep tests: fan-out, byte-identity with the CLI, artifacts.

The sweep surface's acceptance bar: ``POST /v1/analyze`` with a
``sweep`` list must fan the points out as child jobs, merge them in a
parent job, and serve a report byte-identical to ``repro sweep
--format json``.
"""

import json

import pytest

from repro.cli import main
from repro.service import ServiceError

SWEEP = [{"n": 8}, {"n": 10}, {"n": 12}]


def wait_done(live, job_id):
    status = live.client.wait(job_id, timeout=120)
    assert status["state"] == "done", status.get("error")
    return status


class TestSweepSubmission:
    def test_parent_fans_out_children_and_merges(
        self, make_service, tmp_path
    ):
        live = make_service(workers=2, cache_dir=str(tmp_path / "c"))
        sub = live.client.submit(workload="nw", sweep=SWEEP)
        status = wait_done(live, sub["job"])
        assert status["sweep"]["points"] == [
            {"n": 8}, {"n": 10}, {"n": 12},
        ]
        assert len(status["sweep"]["children"]) == 3
        assert status["summary"]["runs"] == 3
        assert status["summary"]["sweep_key"].startswith("swp-")
        # the fanned-out children are real jobs that completed
        for child_id in status["sweep"]["children"]:
            child = live.client.wait(child_id, timeout=120)
            assert child["state"] == "done"
            assert child["bindings"] in SWEEP

    def test_report_bytes_identical_to_cli(
        self, make_service, tmp_path, capsys
    ):
        live = make_service(workers=2, cache_dir=str(tmp_path / "c"))
        sub = live.client.submit(workload="nw", sweep=SWEEP)
        wait_done(live, sub["job"])
        report = live.client.report(sub["job"])
        assert (
            main(
                ["sweep", "nw", "--point", "n=8", "--point", "n=10",
                 "--point", "n=12", "-j", "1", "--format", "json"]
            )
            == 0
        )
        assert report.decode("utf-8") == capsys.readouterr().out
        doc = json.loads(report)
        assert doc["kind"] == "sweep"
        assert doc["workload"] == "nw"

    def test_sweep_has_no_metrics_or_flamegraph(
        self, make_service, tmp_path
    ):
        live = make_service(cache_dir=str(tmp_path / "c"))
        sub = live.client.submit(workload="nw", sweep=SWEEP)
        wait_done(live, sub["job"])
        for fetch in (
            live.client.metrics_doc, live.client.flamegraph,
        ):
            with pytest.raises(ServiceError) as err:
                fetch(sub["job"])
            assert err.value.status == 404
        # the trace artifact exists and carries sweep spans
        trace = json.loads(live.client.trace(sub["job"]))
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "sweep.merge" in names

    def test_identical_sweeps_dedup_regardless_of_order(
        self, make_service, tmp_path
    ):
        live = make_service(cache_dir=str(tmp_path / "c"))
        first = live.client.submit(workload="nw", sweep=SWEEP)
        wait_done(live, first["job"])
        second = live.client.submit(
            workload="nw", sweep=[SWEEP[2], SWEEP[0], SWEEP[1]]
        )
        assert second["deduplicated"] is True
        assert second["job"] == first["job"]

    def test_sweep_without_store_still_merges(self, make_service):
        # no cache_dir: no fan-out (children could not share work),
        # the parent computes every point itself
        live = make_service()
        sub = live.client.submit(workload="nw", sweep=SWEEP)
        status = wait_done(live, sub["job"])
        assert status["sweep"]["children"] == []
        assert status["summary"]["runs"] == 3


class TestSweepValidation:
    def test_sweep_requires_registry_workload(self, make_service):
        from .conftest import counting_loop_docs

        live = make_service()
        program, state = counting_loop_docs(16)
        with pytest.raises(ServiceError) as err:
            live.client.submit(
                program=program, state=state, sweep=SWEEP
            )
        assert err.value.status == 400

    def test_sweep_and_bindings_conflict(self, make_service):
        live = make_service()
        with pytest.raises(ServiceError) as err:
            live.client.submit(
                workload="nw", sweep=SWEEP, bindings={"n": 8}
            )
        assert err.value.status == 400

    def test_empty_sweep_needs_declared_ranges(self, make_service):
        live = make_service()
        with pytest.raises(ServiceError) as err:
            live.client.submit(workload="mm", sweep=[])
        assert err.value.status == 400

    def test_unknown_param_rejected(self, make_service):
        live = make_service()
        with pytest.raises(ServiceError) as err:
            live.client.submit(workload="nw", sweep=[{"depth": 2}])
        assert err.value.status == 400


class TestBindings:
    def test_bindings_job_round_trip(self, make_service):
        live = make_service()
        sub = live.client.submit(
            workload="nw", bindings={"n": 8}
        )
        status = wait_done(live, sub["job"])
        assert status["bindings"] == {"n": 8}

    def test_distinct_bindings_do_not_dedup(self, make_service):
        live = make_service()
        a = live.client.submit(workload="nw", bindings={"n": 8})
        b = live.client.submit(workload="nw", bindings={"n": 12})
        assert a["job"] != b["job"]

    def test_unknown_binding_param_rejected(self, make_service):
        live = make_service()
        with pytest.raises(ServiceError) as err:
            live.client.submit(workload="nw", bindings={"depth": 2})
        assert err.value.status == 400
