"""Backpressure, per-job deadlines, cancellation, and graceful drain."""

import time

import pytest

from repro.service import JobFailed, ServiceError

from .conftest import counting_loop_docs

#: iterations that keep the single worker busy for a while (seconds of
#: instrumented execution) without being anywhere near unbounded
SLOW_ITERS = 2_000_000
#: iterations that finish quickly but are observably non-instant
BRIEF_ITERS = 60_000


def _submit_loop(client, iters, **options):
    program, state = counting_loop_docs(iters, name=f"loop_{iters}")
    return client.submit(program=program, state=state, **options)


def _wait_for_state(client, job_id, state, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = client.job(job_id)
        if doc["state"] == state:
            return doc
        time.sleep(0.01)
    raise AssertionError(
        f"job {job_id} never reached {state!r} (last: {doc['state']})"
    )


class TestBackpressure:
    def test_queue_full_returns_429_with_retry_after(self, make_service):
        live = make_service(workers=1, queue_depth=1)
        running = _submit_loop(live.client, SLOW_ITERS)
        _wait_for_state(live.client, running["job"], "running")
        queued = _submit_loop(live.client, SLOW_ITERS + 1)
        assert queued["queue_position"] == 0
        with pytest.raises(ServiceError) as err:
            _submit_loop(live.client, SLOW_ITERS + 2)
        assert err.value.status == 429
        assert err.value.retry_after == 1.0
        assert "queue full" in err.value.doc["error"]
        # the rejected submission was never executed and does not
        # poison the key: the same request is accepted once there is room
        live.client.cancel(queued["job"])
        live.client.cancel(running["job"])
        retried = _submit_loop(live.client, SLOW_ITERS + 2)
        assert retried["deduplicated"] is False

    def test_rejection_is_counted(self, make_service):
        from repro.service import parse_samples

        live = make_service(workers=1, queue_depth=1)
        running = _submit_loop(live.client, SLOW_ITERS)
        _wait_for_state(live.client, running["job"], "running")
        queued = _submit_loop(live.client, SLOW_ITERS + 1)
        with pytest.raises(ServiceError):
            _submit_loop(live.client, SLOW_ITERS + 2)
        samples = parse_samples(live.client.service_metrics())
        assert samples["repro_service_jobs_rejected_total"] == 1
        live.client.cancel(queued["job"])
        live.client.cancel(running["job"])


class TestDeadlines:
    def test_job_timeout_is_terminal_and_reported(self, make_service):
        live = make_service()
        sub = _submit_loop(live.client, SLOW_ITERS, timeout=0.05)
        with pytest.raises(JobFailed) as err:
            live.client.wait(sub["job"], timeout=30)
        doc = err.value.status_doc
        assert doc["state"] == "timeout"
        assert "timed out after 0.05s" in doc["error"]
        assert doc["finished_at"] is not None
        # artifacts never materialized
        with pytest.raises(ServiceError) as arterr:
            live.client.report(sub["job"])
        assert arterr.value.status == 409

    def test_timed_out_key_can_be_retried(self, make_service):
        live = make_service()
        program, state = counting_loop_docs(BRIEF_ITERS, name="retry_me")
        first = live.client.submit(
            program=program, state=state, timeout=0.0001
        )
        with pytest.raises(JobFailed):
            live.client.wait(first["job"], timeout=30)
        second = live.client.submit(program=program, state=state)
        assert second["job"] != first["job"]
        assert second["deduplicated"] is False
        assert live.client.wait(second["job"])["state"] == "done"


class TestCancellation:
    def test_cancel_queued_job(self, make_service):
        live = make_service(workers=1, queue_depth=4)
        running = _submit_loop(live.client, SLOW_ITERS)
        _wait_for_state(live.client, running["job"], "running")
        queued = _submit_loop(live.client, SLOW_ITERS + 1)
        doc = live.client.cancel(queued["job"])
        assert doc["state"] == "cancelled"
        assert doc["error"] == "cancelled by client"
        live.client.cancel(running["job"])

    def test_cancel_running_job(self, make_service):
        live = make_service()
        running = _submit_loop(live.client, SLOW_ITERS)
        _wait_for_state(live.client, running["job"], "running")
        live.client.cancel(running["job"])
        doc = _wait_for_state(live.client, running["job"], "cancelled")
        assert doc["error"] == "cancelled while running"


class TestDrain:
    def test_drain_cancels_queued_finishes_inflight(self, make_service):
        live = make_service(workers=1, queue_depth=4)
        # big enough to still be running while we drain, small enough
        # to finish comfortably inside the grace window even on a
        # slow single-core host (400k iters has been observed to take
        # >30s there, turning this into a flake)
        inflight = _submit_loop(live.client, 150_000)
        _wait_for_state(live.client, inflight["job"], "running")
        queued = _submit_loop(live.client, SLOW_ITERS)

        live.service.begin_drain()
        health = live.client.health()
        assert health["_http_status"] == 503
        assert health["status"] == "draining"
        with pytest.raises(ServiceError) as err:
            live.client.submit(workload="nn")
        assert err.value.status == 503
        assert err.value.retry_after == 10.0

        clean = live.service.shutdown(grace=30)
        assert clean is True
        # no socket anymore: read the jobs straight off the registry
        jobs = {j.id: j for j in live.service.registry.jobs()}
        assert jobs[inflight["job"]].state == "done"
        assert jobs[queued["job"]].state == "cancelled"
        assert "draining" in jobs[queued["job"]].error

    def test_shutdown_past_grace_cancels_inflight(self, make_service):
        live = make_service(workers=1)
        running = _submit_loop(live.client, 50_000_000)
        _wait_for_state(live.client, running["job"], "running")
        clean = live.service.shutdown(grace=0.1)
        assert clean is False
        job = live.service.registry.get(running["job"])
        assert job.state == "cancelled"
