"""Process-pool execution: byte identity, drain, cancel, crashes.

Everything here drives a live daemon running ``execution="process"``
over the HTTP surface, mirroring the thread-mode tests -- the point of
the process pool is that clients cannot tell the difference (except
that cold throughput scales with cores and a dead worker can no longer
wedge a job).
"""

import os
import signal
import time

import pytest

from repro.service import JobFailed, ServiceError, parse_samples

from .conftest import counting_loop_docs

SLOW_ITERS = 2_000_000
BRIEF_ITERS = 60_000


def _submit_loop(client, iters, **options):
    program, state = counting_loop_docs(iters, name=f"loop_{iters}")
    return client.submit(program=program, state=state, **options)


def _wait_for_state(client, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = client.job(job_id)
        if doc["state"] == state:
            return doc
        time.sleep(0.01)
    raise AssertionError(
        f"job {job_id} never reached {state!r} (last: {doc['state']})"
    )


class TestByteIdentity:
    def test_artifacts_identical_to_thread_mode(
        self, make_service, tmp_path
    ):
        """The same submission produces the same bytes whether the
        analysis ran in a worker thread or a worker process (and a
        fresh daemon sharing the store directory serves them warm)."""
        program, state = counting_loop_docs(BRIEF_ITERS, name="ident")
        outputs = {}
        for mode in ("thread", "process"):
            live = make_service(
                execution=mode, cache_dir=str(tmp_path / mode)
            )
            sub = live.client.submit(program=program, state=state)
            status = live.client.wait(sub["job"], timeout=60)
            assert status["state"] == "done"
            outputs[mode] = (
                live.client.report(sub["job"]),
                live.client.metrics_doc(sub["job"]),
                live.client.flamegraph(sub["job"]),
            )
        assert outputs["thread"] == outputs["process"]

    def test_warm_hits_through_shared_store_directory(
        self, make_service, tmp_path
    ):
        """Worker processes read and write the daemon's cache
        directory: a re-submission to a *fresh* process-mode daemon is
        a pure artifact decode, and the hit shows up in the daemon's
        own store counters (shipped back over the pipe)."""
        program, state = counting_loop_docs(BRIEF_ITERS, name="warm")
        cache = str(tmp_path / "store")
        cold = make_service(execution="process", cache_dir=cache)
        sub = cold.client.submit(program=program, state=state)
        cold_status = cold.client.wait(sub["job"], timeout=60)
        assert cold_status["cache"]["hit"] is False
        cold_report = cold.client.report(sub["job"])
        cold.service.shutdown(grace=5)

        warm = make_service(execution="process", cache_dir=cache)
        sub = warm.client.submit(program=program, state=state)
        warm_status = warm.client.wait(sub["job"], timeout=60)
        assert warm_status["cache"]["hit"] is True
        assert warm.client.report(sub["job"]) == cold_report
        samples = parse_samples(warm.client.service_metrics())
        assert samples["repro_service_store_hits"] >= 1

    def test_dedup_survives_process_mode(self, make_service):
        """Two identical submissions are one execution: the process
        boundary does not break content-addressed coalescing."""
        live = make_service(execution="process", workers=2)
        first = _submit_loop(live.client, SLOW_ITERS)
        _wait_for_state(live.client, first["job"], "running")
        second = _submit_loop(live.client, SLOW_ITERS)
        assert second["deduplicated"] is True
        assert second["job"] == first["job"]
        live.client.cancel(first["job"])


class TestTopology:
    def test_healthz_and_metrics_surface_process_workers(
        self, make_service
    ):
        live = make_service(execution="process", workers=2)
        doc = live.client.health(raise_for_status=True)
        assert doc["execution"] == "process"
        workers = doc["process_workers"]
        assert len(workers) == 2
        assert all(w["alive"] for w in workers)
        assert all(isinstance(w["pid"], int) for w in workers)
        text = live.client.service_metrics()
        assert 'repro_service_execution_info{mode="process"}' in text
        assert 'repro_service_worker_pid{worker="0"}' in text
        assert 'repro_service_worker_restarts{worker="1"} 0' in text
        samples = parse_samples(text)
        assert samples["repro_service_worker_restarts_total"] == 0

    def test_replica_id_is_reported(self, make_service):
        live = make_service(execution="thread", replica_id="r7")
        doc = live.client.health(raise_for_status=True)
        assert doc["replica"] == "r7"
        assert (
            'repro_service_execution_info{mode="thread",replica="r7"}'
            in live.client.service_metrics()
        )


class TestDeadlinesAndCancel:
    def test_timeout_crosses_the_process_boundary(self, make_service):
        """The deadline observer runs *inside* the worker process; the
        job still lands ``timeout`` with no artifacts and no restart
        (cooperative, not a kill)."""
        live = make_service(execution="process")
        sub = _submit_loop(live.client, SLOW_ITERS, timeout=0.05)
        with pytest.raises(JobFailed) as err:
            live.client.wait(sub["job"], timeout=60)
        assert err.value.status_doc["state"] == "timeout"
        assert "timed out after 0.05s" in err.value.status_doc["error"]
        samples = parse_samples(live.client.service_metrics())
        assert samples["repro_service_jobs_timeout_total"] == 1
        assert samples["repro_service_worker_restarts_total"] == 0

    def test_cancel_of_running_process_job_is_prompt(self, make_service):
        """Cancelling a job mid-execution in a worker process is
        honored at heartbeat granularity, not at job granularity: the
        slow job dies in well under the time it would need to finish,
        and the worker survives to run the next job."""
        live = make_service(execution="process")
        sub = _submit_loop(live.client, SLOW_ITERS * 4)
        _wait_for_state(live.client, sub["job"], "running")
        t0 = time.monotonic()
        live.client.cancel(sub["job"])
        doc = _wait_for_state(live.client, sub["job"], "cancelled")
        assert time.monotonic() - t0 < 10.0
        assert doc["error"] == "cancelled while running"
        follow = _submit_loop(live.client, BRIEF_ITERS)
        assert live.client.wait(follow["job"], timeout=60)["state"] == "done"
        samples = parse_samples(live.client.service_metrics())
        assert samples["repro_service_worker_restarts_total"] == 0

    def test_drain_finishes_in_flight_and_cancels_queued(
        self, make_service
    ):
        """SIGTERM semantics across the process boundary: the running
        process job finishes inside the grace window (clean drain),
        queued jobs are cancelled without ever executing."""
        live = make_service(execution="process", workers=1)
        running = _submit_loop(live.client, 150_000)
        _wait_for_state(live.client, running["job"], "running")
        queued = _submit_loop(live.client, 150_001)
        clean = live.service.shutdown(grace=60)
        assert clean is True
        running_job = live.service.registry.get(running["job"])
        queued_job = live.service.registry.get(queued["job"])
        assert running_job.state == "done"
        assert queued_job.state == "cancelled"
        assert queued_job.error == "cancelled: service draining"
        assert queued_job.started_at is None

    def test_drain_past_grace_cancels_running_process_job(
        self, make_service
    ):
        """A drain whose grace expires falls back to cooperative
        cancellation of the in-flight process job -- the daemon never
        has to kill the worker to shut down."""
        live = make_service(execution="process", workers=1)
        running = _submit_loop(live.client, SLOW_ITERS * 8)
        _wait_for_state(live.client, running["job"], "running")
        clean = live.service.shutdown(grace=0.1)
        assert clean is False
        job = live.service.registry.get(running["job"])
        assert job.state == "cancelled"


class TestCrashRecovery:
    def test_kill_mid_job_marks_failed_and_respawns(self, make_service):
        """SIGKILL the worker process mid-analysis: the job lands
        ``failed`` with a machine-readable ``worker_crashed`` record
        (pre-procpool it stayed ``running`` forever), the restart
        counter increments, the slot gets a fresh pid, and the next
        job runs normally."""
        live = make_service(execution="process", workers=1)
        sub = _submit_loop(live.client, SLOW_ITERS * 4)
        _wait_for_state(live.client, sub["job"], "running")
        doc = live.client.health(raise_for_status=True)
        old_pid = doc["process_workers"][0]["pid"]
        os.kill(old_pid, signal.SIGKILL)
        failed = _wait_for_state(live.client, sub["job"], "failed")
        assert failed["error"].startswith("worker_crashed")
        assert failed["crash"]["kind"] == "worker_crashed"
        assert failed["crash"]["worker"] == 0
        with pytest.raises(ServiceError) as err:
            live.client.report(sub["job"])
        assert err.value.status == 409

        def _respawned():
            d = live.client.health(raise_for_status=True)
            w = d["process_workers"][0]
            return w["alive"] and w["pid"] != old_pid

        deadline = time.monotonic() + 30
        while not _respawned():
            assert time.monotonic() < deadline, "worker never respawned"
            time.sleep(0.05)
        samples = parse_samples(live.client.service_metrics())
        assert samples["repro_service_worker_restarts_total"] == 1
        assert samples["repro_service_jobs_failed_total"] == 1
        follow = _submit_loop(live.client, BRIEF_ITERS)
        assert live.client.wait(follow["job"], timeout=60)["state"] == "done"

    def test_crashed_key_can_be_resubmitted(self, make_service):
        """A worker-crash failure does not poison the dedup key: the
        identical submission gets a fresh job and succeeds."""
        live = make_service(execution="process", workers=1)
        sub = _submit_loop(live.client, SLOW_ITERS * 4)
        _wait_for_state(live.client, sub["job"], "running")
        pid = live.client.health(raise_for_status=True)[
            "process_workers"
        ][0]["pid"]
        os.kill(pid, signal.SIGKILL)
        _wait_for_state(live.client, sub["job"], "failed")
        retry = _submit_loop(live.client, SLOW_ITERS * 4)
        assert retry["deduplicated"] is False
        assert retry["job"] != sub["job"]
        live.client.cancel(retry["job"])
