"""Consistent-hash routing over replica daemons.

Ring unit tests plus live two-replica topologies: routing by content
key, dedup and byte identity through the router, health-checked
failover when a replica dies mid-suite.
"""

import time

import pytest

from repro.service import ServiceError, parse_samples
from repro.service.router import HashRing

from .conftest import counting_loop_docs

SLOW_ITERS = 2_000_000
BRIEF_ITERS = 60_000


class TestHashRing:
    def test_deterministic_and_total(self):
        ring = HashRing(["a:1", "b:2", "c:3"], vnodes=32)
        keys = [f"key-{i}" for i in range(200)]
        first = [ring.node_for(k) for k in keys]
        again = [ring.node_for(k) for k in keys]
        assert first == again
        assert set(first) == {"a:1", "b:2", "c:3"}  # no starved node

    def test_preference_list_covers_all_nodes_once(self):
        ring = HashRing(["a:1", "b:2", "c:3"], vnodes=16)
        pref = ring.preference("some-key")
        assert sorted(pref) == ["a:1", "b:2", "c:3"]
        assert len(set(pref)) == 3

    def test_exclusion_falls_over_to_successor(self):
        ring = HashRing(["a:1", "b:2"], vnodes=16)
        key = "k"
        home = ring.node_for(key)
        other = ring.node_for(key, exclude={home})
        assert other != home
        assert ring.node_for(key, exclude={"a:1", "b:2"}) is None

    def test_losing_a_node_moves_only_its_keys(self):
        """The consistent-hashing contract: removing one of three
        nodes re-homes only the keys that lived on it."""
        full = HashRing(["a:1", "b:2", "c:3"], vnodes=64)
        reduced = HashRing(["a:1", "b:2"], vnodes=64)
        moved = 0
        for i in range(500):
            key = f"key-{i}"
            before, after = full.node_for(key), reduced.node_for(key)
            if before == "c:3":
                assert after in ("a:1", "b:2")
            else:
                assert after == before, "a surviving node's key moved"
                moved += 0
        assert reduced.node_for("key-0") is not None

    def test_duplicate_nodes_are_collapsed(self):
        ring = HashRing(["a:1", "a:1", "b:2"], vnodes=8)
        assert ring.nodes == ["a:1", "b:2"]


def _boot_replicas(make_service, tmp_path, n=2, **overrides):
    overrides.setdefault("cache_dir", str(tmp_path / "store"))
    return [
        make_service(replica_id=f"r{i}", **overrides) for i in range(n)
    ]


class TestRoutedTopology:
    def test_healthz_reports_ring_and_replica_states(
        self, make_service, make_router, tmp_path
    ):
        replicas = _boot_replicas(make_service, tmp_path)
        router = make_router(replicas)
        doc = router.client.health(raise_for_status=True)
        assert doc["role"] == "router"
        assert doc["status"] == "ok"
        assert len(doc["ring"]["members"]) == 2
        assert [r["state"] for r in doc["replicas"]] == [
            "healthy",
            "healthy",
        ]
        assert {r["info"]["replica"] for r in doc["replicas"]} == {
            "r0",
            "r1",
        }
        text = router.client.service_metrics()
        samples = parse_samples(text)
        assert samples["repro_router_replicas"] == 2
        assert samples["repro_router_replicas_up"] == 2
        assert text.count("repro_router_replica_up{") == 2

    def test_bad_submission_is_rejected_at_the_edge(
        self, make_service, make_router, tmp_path
    ):
        router = make_router(_boot_replicas(make_service, tmp_path))
        with pytest.raises(ServiceError) as err:
            router.client.submit(workload="no_such_workload")
        assert err.value.status == 400
        samples = parse_samples(router.client.service_metrics())
        assert samples["repro_router_forwards_total"] == 0

    def test_unknown_job_is_404_through_router(
        self, make_service, make_router, tmp_path
    ):
        router = make_router(_boot_replicas(make_service, tmp_path))
        with pytest.raises(ServiceError) as err:
            router.client.job("j999999-deadbeef")
        assert err.value.status == 404


class TestRoutedExecution:
    def test_reports_byte_identical_to_single_daemon(
        self, make_service, make_router, tmp_path
    ):
        """Every artifact fetched through the router is byte-for-byte
        what a standalone daemon produces for the same submission."""
        replicas = _boot_replicas(make_service, tmp_path)
        router = make_router(replicas)
        single = make_service(cache_dir=str(tmp_path / "single"))
        for i in range(3):
            program, state = counting_loop_docs(
                BRIEF_ITERS + i, name=f"routed_{i}"
            )
            _, via_router = router.client.analyze(
                program=program, state=state, wait_timeout=60
            )
            _, via_single = single.client.analyze(
                program=program, state=state, wait_timeout=60
            )
            assert via_router == via_single

    def test_identical_submissions_route_to_one_replica_and_dedup(
        self, make_service, make_router, tmp_path
    ):
        """Content-keyed routing preserves exactly-once: the second
        identical submission lands on the same replica and coalesces
        onto the same job id."""
        replicas = _boot_replicas(make_service, tmp_path)
        router = make_router(replicas)
        program, state = counting_loop_docs(SLOW_ITERS, name="dedup")
        first = router.client.submit(program=program, state=state)
        second = router.client.submit(program=program, state=state)
        assert second["deduplicated"] is True
        assert second["job"] == first["job"]
        total_jobs = sum(
            len(live.service.registry.jobs()) for live in replicas
        )
        assert total_jobs == 1
        router.client.cancel(first["job"])

    def test_jobs_spread_across_replicas(
        self, make_service, make_router, tmp_path
    ):
        """Distinct submissions land on both ring members (with enough
        keys, consistent hashing uses the whole ring)."""
        replicas = _boot_replicas(make_service, tmp_path)
        router = make_router(replicas)
        for i in range(8):
            program, state = counting_loop_docs(
                BRIEF_ITERS + 100 + i, name=f"spread_{i}"
            )
            sub = router.client.submit(program=program, state=state)
            router.client.wait(sub["job"], timeout=60)
        per_replica = [
            len(live.service.registry.jobs()) for live in replicas
        ]
        assert sum(per_replica) == 8
        assert all(count > 0 for count in per_replica)

    def test_cancel_proxies_to_the_owning_replica(
        self, make_service, make_router, tmp_path
    ):
        replicas = _boot_replicas(make_service, tmp_path)
        router = make_router(replicas)
        program, state = counting_loop_docs(SLOW_ITERS, name="rcancel")
        sub = router.client.submit(program=program, state=state)
        doc = router.client.cancel(sub["job"])
        assert doc["state"] in ("cancelled", "running")
        deadline = time.monotonic() + 30
        while router.client.job(sub["job"])["state"] not in (
            "cancelled",
            "done",
        ):
            assert time.monotonic() < deadline
            time.sleep(0.02)


class TestFailover:
    def test_killing_one_replica_loses_no_jobs(
        self, make_service, make_router, tmp_path
    ):
        """The acceptance criterion: with one ring member dead,
        resilient clients finish every submission (re-routed to the
        survivor), and the router reports the death."""
        replicas = _boot_replicas(make_service, tmp_path)
        router = make_router(replicas)
        programs = [
            counting_loop_docs(BRIEF_ITERS + 200 + i, name=f"kill_{i}")
            for i in range(6)
        ]
        # warm half the keys through the full ring first
        for program, state in programs[:3]:
            router.client.analyze_resilient(
                program=program, state=state, wait_timeout=60
            )
        victim = replicas[0]
        victim.service.shutdown(grace=0.2)
        deadline = time.monotonic() + 15
        while True:  # wait until the health loop notices
            states = router.service.replica_states()
            if "down" in states.values():
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        reports = []
        for program, state in programs:
            status, report = router.client.analyze_resilient(
                program=program, state=state, wait_timeout=60
            )
            assert status["state"] == "done"
            reports.append(report)
        assert len(reports) == 6
        survivor = replicas[1].service
        assert all(
            job.state in ("done", "cancelled")
            for job in survivor.registry.jobs()
        ), "no failed jobs on the survivor"
        doc = router.client.health(raise_for_status=True)
        assert {r["state"] for r in doc["replicas"]} == {
            "down",
            "healthy",
        }

    def test_submission_fails_over_before_health_loop_notices(
        self, make_service, make_router, tmp_path
    ):
        """A forward that hits a dead socket falls over to the ring
        successor inside the same request -- no waiting on the probe
        interval."""
        replicas = _boot_replicas(make_service, tmp_path)
        # a slow health loop so only mid-request failover can save us
        router = make_router(replicas, health_interval=30.0)
        replicas[0].service.shutdown(grace=0.2)
        for i in range(4):
            program, state = counting_loop_docs(
                BRIEF_ITERS + 300 + i, name=f"fo_{i}"
            )
            status, _ = router.client.analyze_resilient(
                program=program, state=state, wait_timeout=60
            )
            assert status["state"] == "done"
        samples = parse_samples(router.client.service_metrics())
        assert samples["repro_router_failovers_total"] >= 1
