"""The service's parallel-fold surface: option parsing, the
oversubscription cap, /healthz exposure, dedup across fold_jobs, and
an end-to-end parallel-folded job whose rendered artifacts match a
local serial analysis byte for byte."""

import os

import pytest

from repro.feedback.jsonout import render_json, report_document
from repro.pipeline import analyze
from repro.service import AnalysisService, BadRequest, ServiceConfig
from repro.workloads import all_workloads


def _unstarted(**overrides):
    """A service object for config/parsing assertions -- never
    started, so no sockets or worker threads exist."""
    overrides.setdefault("port", 0)
    overrides.setdefault("workers", 1)
    overrides.setdefault("log_level", "error")
    return AnalysisService(ServiceConfig(**overrides))


class TestCap:
    def test_explicit_cap_wins(self):
        svc = _unstarted(workers=1, max_fold_jobs=3)
        assert svc.fold_jobs_cap == 3

    def test_auto_cap_divides_cores_among_workers(self):
        """Default cap keeps total fold fan-out (workers x fold_jobs)
        at or under the core count, bottoming out at 1."""
        cpus = os.cpu_count() or 1
        for workers in (1, 2, 4):
            svc = _unstarted(workers=workers)
            assert svc.fold_jobs_cap == max(1, cpus // workers)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            _unstarted(max_fold_jobs=0)


class TestOptionParsing:
    def test_default_is_serial(self):
        svc = _unstarted(max_fold_jobs=4)
        assert svc._build_options({}).fold_jobs == 1

    def test_passthrough_under_cap(self):
        svc = _unstarted(max_fold_jobs=4)
        assert svc._build_options({"fold_jobs": 3}).fold_jobs == 3

    def test_silently_clamped_to_cap(self):
        # clamping (not rejecting) is deliberate: the capped request
        # still computes the identical result
        svc = _unstarted(max_fold_jobs=2)
        assert svc._build_options({"fold_jobs": 64}).fold_jobs == 2

    @pytest.mark.parametrize("bad", ("three", None, [2], 0, -1))
    def test_invalid_values_are_400s(self, bad):
        svc = _unstarted(max_fold_jobs=4)
        with pytest.raises(BadRequest):
            svc._build_options({"fold_jobs": bad})


class TestLiveService:
    def test_healthz_exposes_cap(self, make_service):
        live = make_service(workers=1, max_fold_jobs=2)
        doc = live.client.health()
        assert doc["fold_jobs_cap"] == 2

    def test_parallel_job_matches_local_serial_bytes(self, make_service):
        live = make_service(workers=1, max_fold_jobs=2)
        sub = live.client.submit(workload="nn", fold_jobs=2)
        done = live.client.wait(sub["job"])
        assert done["state"] == "done"
        assert done["options"]["fold_jobs"] == 2
        local = analyze(all_workloads()["nn"]())
        expected = render_json(report_document(local)).encode("utf-8")
        assert live.client.report(sub["job"]) == expected

    def test_dedup_across_fold_jobs(self, make_service):
        """fold_jobs changes how the answer is computed, not the
        answer: requests differing only in fold_jobs coalesce."""
        live = make_service(workers=1, max_fold_jobs=2)
        first = live.client.submit(workload="nn", fold_jobs=2)
        live.client.wait(first["job"])
        second = live.client.submit(workload="nn")
        assert second["deduplicated"] is True
        assert second["job"] == first["job"]
