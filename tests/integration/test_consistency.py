"""Cross-validation of the folding stage against ground truth.

The RecordingSink stores the uncompressed DDG (every dynamic point and
dependence); the FoldingSink compresses on the fly.  These tests run
both over the same executions and check the fold is *faithful*:

* every recorded instance lies in the folded statement domain;
* exact domains contain nothing else (cardinality matches);
* folded label functions reproduce every recorded label;
* folded dependence relations map every consumer instance to its
  recorded producer.

A hypothesis-driven generator builds random structured programs
(nested loops with random bounds/strides/conditionals and random
affine or quadratic accesses) so the equivalence is checked well
beyond the hand-written workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ddg import RecordingSink
from repro.folding import FoldingSink
from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, profile_control, profile_ddg
from repro.workloads import rodinia_workloads


def both_sinks(spec):
    control = profile_control(spec)
    rec = RecordingSink()
    profile_ddg(spec, control, sink=rec)
    fold = FoldingSink()
    profile_ddg(spec, control, sink=fold)
    return rec, fold.finalize()


def check_faithful(rec, folded):
    # statements
    for key, pts in rec.points.items():
        fs = folded.statements[key]
        assert fs.count == len(pts)
        for coords, label in pts:
            assert fs.domain.contains(coords), (fs.stmt.instr, coords)
            if label and fs.label_pieces is not None:
                hit = any(
                    dom.contains(coords)
                    and tuple(fn.eval_int(coords)) == tuple(label)
                    for dom, fn, _ in fs.label_pieces
                )
                assert hit, (fs.stmt.instr, coords, label)
        if fs.exact:
            assert fs.domain.card() == len(pts)
    # dependences
    for dep, pts in rec.deps.items():
        fdep = folded.deps[dep]
        assert fdep.count == len(pts)
        if fdep.relation is None:
            continue
        for dst, src in pts:
            assert fdep.domain.contains(dst)
            hit = any(
                piece.contains(dst) and tuple(fn.eval_int(dst)) == tuple(src)
                for piece, fn in fdep.relation.pieces
            )
            assert hit, (dep, dst, src)


@pytest.mark.parametrize(
    "name", ["backprop", "nw", "kmeans", "lud", "hotspot3D", "nn"]
)
def test_workload_folding_faithful(name):
    spec = rodinia_workloads()[name]()
    rec, folded = both_sinks(spec)
    check_faithful(rec, folded)


# ---- randomized structured programs ------------------------------------------

@st.composite
def random_program(draw):
    """A random 1-3 deep nest with random accesses and a conditional."""
    depth = draw(st.integers(1, 3))
    bounds = [draw(st.integers(2, 5)) for _ in range(depth)]
    # access coefficients per memory op (some non-affine via mod)
    n_access = draw(st.integers(1, 3))
    accesses = []
    for _ in range(n_access):
        kind = draw(st.sampled_from(["affine", "mod", "triangular"]))
        coeffs = [draw(st.integers(0, 3)) for _ in range(depth)]
        accesses.append((kind, coeffs))
    use_if = draw(st.booleans())
    seed = draw(st.integers(0, 2 ** 16))
    return depth, bounds, accesses, use_if, seed


def build_random_spec(params):
    depth, bounds, accesses, use_if, seed = params
    pb = ProgramBuilder("rand")
    with pb.function("main", ["A", "B"]) as f:
        ivs = []
        ctxs = []
        for b in bounds:
            ctx = f.loop(0, b)
            ivs.append(ctx.__enter__())
            ctxs.append(ctx)
        acc = f.set(f.fresh_reg("acc"), 0.0)
        for kind, coeffs in accesses:
            idx = f.set(f.fresh_reg("idx"), 0)
            for c, iv in zip(coeffs, ivs):
                if c:
                    f.add(idx, f.mul(iv, c), into=idx)
            if kind == "mod":
                idx = f.mod(idx, 7)
            elif kind == "triangular" and len(ivs) >= 2:
                idx = f.add(idx, f.mul(ivs[0], ivs[1]))  # non-affine
            v = f.load("A", index=f.mod(idx, 64))
            f.fadd(acc, v, into=acc)
        if use_if:
            with f.if_then("lt", ivs[-1], bounds[-1] // 2):
                f.store("B", acc, index=ivs[-1])
        else:
            f.store("B", acc, index=ivs[-1])
        for ctx in reversed(ctxs):
            ctx.__exit__(None, None, None)
        f.halt()

    def state():
        mem = Memory()
        a = mem.alloc_array([float((i * 31 + seed) % 11) for i in range(64)])
        b = mem.alloc(64, init=0.0)
        return (a, b), mem

    return ProgramSpec("rand", pb.build(), state)


@given(random_program())
@settings(max_examples=25, deadline=None)
def test_random_programs_fold_faithfully(params):
    spec = build_random_spec(params)
    rec, folded = both_sinks(spec)
    check_faithful(rec, folded)


def test_two_instrumentation_runs_agree():
    """Instrumentation I and II observe identical executions."""
    spec = rodinia_workloads()["srad_v1"]()
    control = profile_control(spec)
    rec = RecordingSink()
    ddgp = profile_ddg(spec, control, sink=rec)
    assert control.stats.dyn_instrs == ddgp.stats.dyn_instrs
    assert control.stats.dyn_calls == ddgp.stats.dyn_calls
    assert control.stats.per_opcode == ddgp.stats.per_opcode


@pytest.mark.parametrize(
    "name", ["backprop", "nw", "srad_v2", "hotspot3D", "lud", "gemsfdtd"]
)
def test_all_suggested_plans_verify(name):
    """End-to-end consistency: every transformation the feedback stage
    suggests must prove legal against the folded dependences it was
    derived from (the suggester and verifier share the FM core, but
    reach it through different code paths)."""
    from repro.pipeline import analyze
    from repro.schedule import verify_plan
    from repro.workloads import all_workloads

    result = analyze(all_workloads()[name]())
    for plan in result.plans:
        if not plan.steps:
            continue
        res = verify_plan(result.forest, plan)
        assert res.legal, (plan.leaf.path, [str(v) for v in res.violations])
