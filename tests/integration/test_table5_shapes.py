"""Regression guard on the Table 5 shapes (subset of the bench's
assertions, kept in the unit suite so refactors cannot silently drift
the reproduction)."""


from repro.feedback import compute_region_metrics
from repro.pipeline import analyze
from repro.workloads import rodinia_workloads


def row_for(name):
    spec = rodinia_workloads()[name]()
    result = analyze(spec)
    m = compute_region_metrics(
        result.folded,
        result.forest,
        result.control.callgraph,
        region_funcs=spec.region_funcs,
        label=spec.region_label,
        ld_src=spec.ld_src,
        fusion_heuristic=spec.fusion_heuristic,
    )
    return m.row(), result


class TestHeadlineShapes:
    def test_backprop(self):
        row, _ = row_for("backprop")
        assert row["%Aff"] >= 85
        assert row["interproc."] == "Y"
        assert row["TileD"] == "2D"
        assert row["skew"] == "N"
        assert row["%||ops"] >= 95
        assert row["C"] >= 4           # multiple kernel components

    def test_nw_wavefront(self):
        row, _ = row_for("nw")
        assert row["skew"] == "Y"
        assert row["TileD"] == "2D"
        assert row["%||ops"] >= 95     # via skewed wavefronts
        assert row["%simdops"] >= 90   # stride-friendly after skew

    def test_pathfinder_wavefront_but_stride_hostile(self):
        row, _ = row_for("pathfinder")
        assert row["skew"] == "Y"
        assert row["%simdops"] <= 40   # paper: 0

    def test_hotspot_low_affinity(self):
        row, _ = row_for("hotspot")
        assert row["%Aff"] <= 25       # linearized div/mod code

    def test_stencils_high_affinity(self):
        for name in ("srad_v2", "hotspot3D"):
            row, _ = row_for(name)
            assert row["%Aff"] >= 95, name
            assert row["%||ops"] >= 95, name

    def test_hotspot3d_time_excluded_from_band(self):
        row, _ = row_for("hotspot3D")
        assert row["ld-bin"] == "4D"
        assert row["TileD"] == "3D"

    def test_bfs_irregular_but_observably_parallel(self):
        row, _ = row_for("bfs")
        assert row["%Aff"] <= 30            # data-dependent domains
        # the *observed* execution has no frontier conflicts: the node
        # loop is parallel in this run (the paper's 100%), found via
        # per-component dependence folding (the level coordinate is
        # exactly affine even though the gathered address is not)
        assert row["%||ops"] >= 90

    def test_streamcluster_budget(self):
        spec = rodinia_workloads()["streamcluster"]()
        result = analyze(spec)
        assert spec.scheduler_stmt_budget is not None
        assert result.folded.stmt_count() > spec.scheduler_stmt_budget
