"""Engine equivalence: the fast path must be invisible in the results.

The block-compiled VM + batched DDG builder + fast folding backend
(``engine="fast"``) and the reference per-instruction interpreter +
reference folder (``engine="reference"``) must produce *identical*
analyses for every workload: same run statistics, same folded
statements and dependence relations (domains, counts, exactness,
label pieces, SCEV flags, partial fits), same schedule tree, same
plans and rendered report.
"""

import pytest

from repro.feedback.report import render_report
from repro.pipeline import analyze
from repro.workloads import all_workloads

WORKLOADS = sorted(all_workloads())


def stmt_sig(fs):
    label_pieces = None
    if fs.label_pieces is not None:
        label_pieces = [
            (str(dom), str(fn), cnt) for dom, fn, cnt in fs.label_pieces
        ]
    return (
        fs.count,
        str(fs.domain),
        fs.exact,
        label_pieces,
        fs.had_label,
        fs.is_scev,
    )


def dep_sig(fd):
    relation = None
    if fd.relation is not None:
        # IMap has no __eq__; compare its pieces structurally
        relation = (
            str(fd.relation.in_space),
            str(fd.relation.out_space),
            [(str(poly), str(fn)) for poly, fn in fd.relation.pieces],
        )
    partial = None
    if fd.partial_src is not None:
        partial = [None if e is None else str(e) for e in fd.partial_src]
    return (
        fd.count,
        str(fd.domain),
        fd.domain_exact,
        relation,
        partial,
        fd.src_depth,
        fd.dst_depth,
    )


def stats_sig(stats):
    return (
        stats.dyn_instrs,
        stats.dyn_branches,
        stats.dyn_calls,
        stats.mem_ops,
        stats.fp_ops,
        dict(stats.per_opcode),
    )


@pytest.mark.parametrize("name", WORKLOADS)
def test_engines_identical(name):
    spec_fast = all_workloads()[name]()
    spec_ref = all_workloads()[name]()
    fast = analyze(spec_fast, engine="fast")
    ref = analyze(spec_ref, engine="reference")

    # run statistics of both instrumented executions
    assert stats_sig(fast.control.stats) == stats_sig(ref.control.stats)
    assert stats_sig(fast.ddg_profile.stats) == stats_sig(
        ref.ddg_profile.stats
    )
    assert (
        fast.ddg_profile.builder.instr_count
        == ref.ddg_profile.builder.instr_count
    )

    # folded statements
    assert set(fast.folded.statements) == set(ref.folded.statements)
    for key, fs in fast.folded.statements.items():
        assert stmt_sig(fs) == stmt_sig(ref.folded.statements[key]), key

    # folded dependence relations
    assert set(fast.folded.deps) == set(ref.folded.deps)
    for key, fd in fast.folded.deps.items():
        assert dep_sig(fd) == dep_sig(ref.folded.deps[key]), key

    # dynamic schedule tree
    assert (
        fast.schedule_tree.render_text() == ref.schedule_tree.render_text()
    )

    # downstream feedback: plans and the rendered report
    assert len(fast.plans) == len(ref.plans)
    assert render_report(fast.forest, fast.plans) == render_report(
        ref.forest, ref.plans
    )


# -- engine x fold_jobs matrix -------------------------------------------------
#
# Parallel sharded folding (repro.parallel) promises the same
# invisibility the fast engine does: analyze(fold_jobs=N) must be
# codec-identical to the serial fold for every N, on both engines.
# The full matrix over every workload would dominate suite runtime;
# two structurally different small workloads suffice here -- the whole
# registry is already pinned serial-vs-serial above, and
# tests/parallel covers the parallel machinery itself.

MATRIX_WORKLOADS = ("nn", "backprop")


@pytest.mark.parametrize("engine", ("fast", "reference"))
@pytest.mark.parametrize("fold_jobs", (2, 3))
@pytest.mark.parametrize("name", MATRIX_WORKLOADS)
def test_parallel_fold_matrix(name, fold_jobs, engine):
    from repro.folding.codec import encode_folded_ddg

    serial = analyze(all_workloads()[name](), engine=engine)
    par = analyze(
        all_workloads()[name](), engine=engine, fold_jobs=fold_jobs
    )
    assert encode_folded_ddg(par.folded) == encode_folded_ddg(serial.folded)
    assert set(par.folded.statements) == set(serial.folded.statements)
    for key, fs in par.folded.statements.items():
        assert stmt_sig(fs) == stmt_sig(serial.folded.statements[key]), key
    for key, fd in par.folded.deps.items():
        assert dep_sig(fd) == dep_sig(serial.folded.deps[key]), key
    assert render_report(par.forest, par.plans) == render_report(
        serial.forest, serial.plans
    )
