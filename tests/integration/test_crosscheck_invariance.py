"""``--crosscheck`` must be a pure observer.

A crosschecked analysis result must be identical to an unchecked one
-- same folded statements and dependences, same plans, same parallel
verdicts -- under both engines.  The sanitizers re-execute the program
(recount) and walk every relation, so any accidental mutation of the
result would silently corrupt the feedback a user acts on.
"""

import pytest

from repro.pipeline import analyze
from repro.workloads import all_workloads

from .test_engine_equivalence import dep_sig, stmt_sig

WORKLOADS = ("bfs", "hotspot", "backprop")


def result_sig(result):
    forest_flags = [
        (node.path, node.parallel, node.parallel_reduction)
        for node in result.forest.walk()
    ]
    return (
        {k: stmt_sig(fs) for k, fs in result.folded.statements.items()},
        {k: dep_sig(fd) for k, fd in result.folded.deps.items()},
        len(result.plans),
        forest_flags,
    )


@pytest.mark.parametrize("name", WORKLOADS)
@pytest.mark.parametrize("engine", ("fast", "reference"))
def test_crosscheck_does_not_change_results(name, engine):
    spec_factory = all_workloads()[name]
    plain = analyze(spec_factory(), engine=engine)
    checked = analyze(spec_factory(), engine=engine, crosscheck=True)
    assert checked.crosscheck is not None
    assert checked.crosscheck.ok, checked.crosscheck.render()
    assert plain.crosscheck is None
    assert result_sig(plain) == result_sig(checked)
