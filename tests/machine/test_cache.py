"""Cache simulator and cost model tests."""

import pytest

from repro.machine import Cache, Hierarchy, iteration_points, tiled_points
from repro.poly import Polyhedron


class TestCache:
    def test_cold_miss_then_hit(self):
        c = Cache(64, line_words=8, assoc=2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(7)      # same line
        assert not c.access(8)  # next line

    def test_lru_eviction(self):
        c = Cache(16, line_words=8, assoc=2)  # 1 set, 2 ways
        c.access(0)    # line 0
        c.access(8)    # line 1
        c.access(0)    # touch line 0: line 1 is now LRU
        c.access(16)   # line 2 evicts line 1
        assert c.access(0)
        assert not c.access(8)

    def test_stride_1_vs_stride_N_miss_rates(self):
        """The physical basis of the %reuse metric: unit stride misses
        once per line, large stride misses every access."""
        n = 1024
        c1 = Cache(512, line_words=8, assoc=4)
        for i in range(n):
            c1.access(i)
        c2 = Cache(512, line_words=8, assoc=4)
        for i in range(n):
            c2.access(i * 64)
        assert c1.stats.miss_rate <= 1 / 8 + 0.01
        assert c2.stats.miss_rate == 1.0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache(100, line_words=8, assoc=3)

    def test_reset(self):
        c = Cache(64)
        c.access(0)
        c.reset()
        assert c.stats.accesses == 0
        assert not c.access(0)  # cold again


class TestHierarchy:
    def test_latency_ordering(self):
        h = Hierarchy()
        first = h.access(0)     # cold: memory
        second = h.access(0)    # L1 hit
        assert first == h.lat_mem
        assert second == h.lat_l1

    def test_l2_backstop(self):
        h = Hierarchy()
        # touch more lines than L1 holds but fewer than L2
        for i in range(0, 1024, 8):
            h.access(i)
        cost = h.access(0)
        assert cost == h.lat_l2


class TestIterationOrders:
    def test_identity_order(self):
        d = Polyhedron.box([(0, 1), (0, 1)])
        pts = list(iteration_points(d))
        assert pts == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_interchanged_order(self):
        d = Polyhedron.box([(0, 1), (0, 2)])
        pts = list(iteration_points(d, order=(1, 0)))
        # j outer, i inner; points reported in original (i, j) coords
        assert pts == [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]

    def test_tiled_order_covers_domain(self):
        d = Polyhedron.box([(0, 5), (0, 5)])
        pts = list(tiled_points(d, tile=3))
        assert sorted(pts) == sorted(d.points())
        # first tile is visited completely before the second
        first_nine = pts[:9]
        assert all(p[0] < 3 and p[1] < 3 for p in first_nine)

    def test_tiled_order_skips_outside_triangle(self):
        tri = Polyhedron(
            2, ineqs=[(1, 0, 0), (-1, 0, 4), (0, 1, 0), (1, -1, 0)]
        )  # 0 <= j <= i <= 4
        pts = list(tiled_points(tri, tile=2))
        assert sorted(pts) == sorted(tri.points())


class TestCostModelSanity:
    def test_interchange_helps_column_major(self):
        """Replaying a (row-major array, column-major loop) stream
        interchanged must cost less in the cache."""
        from repro.machine import replay_cost

        class FakeFn:
            def __init__(self, coeffs):
                from repro.poly import AffineExpr

                self.exprs = [AffineExpr(coeffs, 0)]

        class FakeStmt:
            def __init__(self):
                self.label_fn = FakeFn((1, 64))  # addr = i + 64*j

                class I:
                    is_mem = True

                self.stmt = type("S", (), {"instr": I()})

        d = Polyhedron.box([(0, 63), (0, 63)])
        bad = replay_cost([FakeStmt()], iteration_points(d))            # j inner
        good = replay_cost([FakeStmt()], iteration_points(d, (1, 0)))   # i inner
        assert good.mem_cycles < bad.mem_cycles / 2
