"""Cost-model tests: the speedup estimator's qualitative behaviour."""

import pytest

from repro.machine import CostConfig, estimate_speedup, replay_cost, iteration_points
from repro.pipeline import analyze
from repro.workloads.examples_paper import layerforward_kernel


@pytest.fixture(scope="module")
def layer():
    result = analyze(layerforward_kernel(n1=15, n2=12))
    leaf = max(
        (n for n in result.forest.walk() if n.is_innermost() and n.depth == 2),
        key=lambda n: n.ops_total,
    )
    mem_stmts = [
        s for s in leaf.stmts
        if s.stmt.instr.is_mem and s.label_fn is not None and s.exact
    ]
    dom = max(
        (s for s in leaf.stmts if s.exact and s.depth == 2),
        key=lambda s: s.count,
    ).domain.pieces[0]
    return result, leaf, mem_stmts, dom


class TestEstimateSpeedup:
    def test_simd_alone_helps(self, layer):
        _, leaf, mem, dom = layer
        s, c0, c1 = estimate_speedup(
            mem, dom, 5.0,
            {"order": None}, {"order": None, "simd": True},
            CostConfig(simd_width=4, threads=1),
        )
        assert s > 1.0
        assert c1.alu_cycles < c0.alu_cycles

    def test_threads_scale_sublinearly(self, layer):
        _, leaf, mem, dom = layer
        cfg = CostConfig(threads=8, thread_efficiency=0.5)
        s, c0, c1 = estimate_speedup(
            mem, dom, 5.0,
            {"order": None}, {"order": None, "parallel": True}, cfg,
        )
        assert 1.0 < s <= 8.0
        assert c1.thread_factor == pytest.approx(1 + 7 * 0.5)

    def test_identity_transform_is_neutral(self, layer):
        _, leaf, mem, dom = layer
        s, _, _ = estimate_speedup(
            mem, dom, 5.0, {"order": None}, {"order": None}
        )
        assert s == pytest.approx(1.0)

    def test_combined_beats_parts(self, layer):
        _, leaf, mem, dom = layer
        cfg = CostConfig(simd_width=4, threads=4, thread_efficiency=0.5)
        s_simd, _, _ = estimate_speedup(
            mem, dom, 5.0, {"order": None}, {"simd": True}, cfg
        )
        s_both, _, _ = estimate_speedup(
            mem, dom, 5.0, {"order": None},
            {"simd": True, "parallel": True}, cfg,
        )
        assert s_both > s_simd

    def test_tiling_improves_blocked_reuse(self):
        """A transposed-copy stream that thrashes the cache must get
        cheaper when tiled."""
        from repro.poly import AffineExpr, AffineFunction
        from repro.machine import tiled_points
        from repro.poly import Polyhedron

        class Stmt:
            def __init__(self, coeffs):
                self.label_fn = AffineFunction([AffineExpr(coeffs, 0)])

                class I:
                    is_mem = True

                self.stmt = type("S", (), {"instr": I()})

        n = 48
        dom = Polyhedron.box([(0, n - 1), (0, n - 1)])
        stmts = [Stmt((1, n)), Stmt((n, 1))]  # row-major + col-major
        plain = replay_cost(stmts, iteration_points(dom))
        tiled = replay_cost(stmts, tiled_points(dom, tile=8))
        assert tiled.mem_cycles < plain.mem_cycles
