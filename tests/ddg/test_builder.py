"""DDG construction tests, centred on the paper's Fig. 6 / Table 1.

We profile the ``bpnn_layerforward`` pseudo-assembler kernel and check
that the recorded (uncompressed) dependence streams have exactly the
shape of Table 1: same-iteration register/memory dependences carried
at distance (0,0) and the ``sum`` accumulation carried at (0,1).
"""

import pytest

from repro.ddg import MEM_ANTI, MEM_FLOW, MEM_OUTPUT, REG_FLOW
from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, profile_control, profile_ddg
from repro.workloads.examples_paper import layerforward_kernel


def profile(spec, **kw):
    control = profile_control(spec)
    ddg = profile_ddg(spec, control, **kw)
    return control, ddg


@pytest.fixture(scope="module")
def layerforward():
    spec = layerforward_kernel(n1=5, n2=4)  # scaled: 4 x 6 iterations
    control, ddg = profile(spec)
    return spec, control, ddg


def find_uid(program, func, opcode, n=0):
    """uid of the n-th instruction with the given opcode in a function."""
    hits = [
        ins.uid
        for fn, bb, ins in program.all_instrs()
        if fn.name == func and ins.opcode == opcode
    ]
    return sorted(hits)[n]


class TestLayerforwardDeps:
    def test_sum_accumulation_carried_at_distance_one(self, layerforward):
        """Table 1, I4 -> I4: (cj, ck) depends on (cj, ck-1)."""
        spec, control, ddg = layerforward
        sink = ddg.sink
        fadd = find_uid(spec.program, "bpnn_layerforward", "fadd")
        pts = sink.deps_between(fadd, fadd, REG_FLOW)
        assert pts  # the recurrence exists
        for dst, src in pts:
            assert len(dst) == 2 and len(src) == 2
            assert src == (dst[0], dst[1] - 1)
        # every iteration except ck = 0 consumes the previous one
        dsts = sorted(d for d, _ in pts)
        assert all(d[1] >= 1 for d in dsts)

    def test_row_pointer_feeds_inner_load(self, layerforward):
        """Table 1, I1 -> I2 at distance (0,0): tmp1 feeds load."""
        spec, control, ddg = layerforward
        sink = ddg.sink
        # I1 = first load in the kernel (conn row pointer), I2 = second
        l1_uid = find_uid(spec.program, "bpnn_layerforward", "load", 0)
        # I2 reads tmp1 through an address add; the reg dep chain is
        # I1 -> add -> I2, so check I1 feeds *something* same-iteration
        consumers = [
            (dep, pts)
            for dep, pts in sink.deps.items()
            if dep.src[0] == l1_uid and dep.kind == REG_FLOW
        ]
        assert consumers
        for dep, pts in consumers:
            for dst, src in pts:
                assert dst == src  # same iteration

    def test_memory_flow_into_squash_store(self, layerforward):
        """I7 stores squash's result: a cross-function register chain."""
        spec, control, ddg = layerforward
        sink = ddg.sink
        store_uid = find_uid(spec.program, "bpnn_layerforward", "store")
        feeding = [
            dep for dep in sink.deps if dep.dst[0] == store_uid and dep.kind == REG_FLOW
        ]
        assert feeding  # value flowed from the squash call's return


class TestRegisterDeps:
    def test_intra_block_chain(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            a = f.add(1, 2)
            b = f.add(a, 3)
            f.ret(b)
        spec = ProgramSpec("t", pb.build(), lambda: ((), Memory()))
        _, ddg = profile(spec)
        sink = ddg.sink
        assert len(sink.deps) == 1
        dep = next(iter(sink.deps))
        assert dep.kind == REG_FLOW

    def test_arguments_thread_through_calls(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            x = f.add(20, 22)
            r = f.call("id", [x], want_result=True)
            f.ret(f.add(r, 0))
        with pb.function("id", ["v"]) as f:
            f.ret(f.add("v", 0))
        spec = ProgramSpec("t", pb.build(), lambda: ((), Memory()))
        _, ddg = profile(spec)
        sink = ddg.sink
        prog = spec.program
        producer = find_uid(prog, "main", "add", 0)
        callee_use = find_uid(prog, "id", "add", 0)
        assert sink.deps_between(producer, callee_use, REG_FLOW)

    def test_return_value_threads_back(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            r = f.call("mk", [], want_result=True)
            f.ret(f.add(r, 1))
        with pb.function("mk", []) as f:
            f.ret(f.add(2, 3))
        spec = ProgramSpec("t", pb.build(), lambda: ((), Memory()))
        _, ddg = profile(spec)
        prog = spec.program
        producer = find_uid(prog, "mk", "add", 0)
        consumer = find_uid(prog, "main", "add", 0)
        assert ddg.sink.deps_between(producer, consumer, REG_FLOW)


class TestMemoryDeps:
    def make_spec(self, body, nwords=8):
        pb = ProgramBuilder("t")
        with pb.function("main", ["A"]) as f:
            body(f)
            f.halt()

        def state():
            mem = Memory()
            base = mem.alloc(nwords)
            return (base,), mem

        return ProgramSpec("t", pb.build(), state)

    def test_raw(self):
        def body(f):
            f.store("A", 42, index=0)
            f.load("A", index=0)

        spec = self.make_spec(body)
        _, ddg = profile(spec)
        flows = [d for d in ddg.sink.deps if d.kind == MEM_FLOW]
        assert len(flows) == 1

    def test_waw(self):
        def body(f):
            f.store("A", 1, index=0)
            f.store("A", 2, index=0)

        spec = self.make_spec(body)
        _, ddg = profile(spec)
        outs = [d for d in ddg.sink.deps if d.kind == MEM_OUTPUT]
        assert len(outs) == 1

    def test_war(self):
        def body(f):
            f.store("A", 1, index=0)
            f.load("A", index=0)
            f.store("A", 2, index=0)

        spec = self.make_spec(body)
        _, ddg = profile(spec)
        antis = [d for d in ddg.sink.deps if d.kind == MEM_ANTI]
        assert len(antis) == 1

    def test_no_false_sharing_across_addresses(self):
        def body(f):
            f.store("A", 1, index=0)
            f.load("A", index=1)

        spec = self.make_spec(body)
        _, ddg = profile(spec)
        assert not [d for d in ddg.sink.deps if d.kind == MEM_FLOW]

    def test_loop_carried_stencil_distance(self):
        # A[i] = A[i-1]: flow dep at distance 1
        def body(f):
            with f.loop(1, 6) as i:
                v = f.load("A", index=f.sub(i, 1))
                f.store("A", v, index=i)

        spec = self.make_spec(body)
        _, ddg = profile(spec)
        sink = ddg.sink
        store_uid = find_uid(spec.program, "main", "store")
        load_uid = find_uid(spec.program, "main", "load")
        pts = sink.deps_between(store_uid, load_uid, MEM_FLOW)
        assert pts
        for dst, src in pts:
            assert dst[0] - src[0] == 1

    def test_anti_output_tracking_can_be_disabled(self):
        def body(f):
            f.store("A", 1, index=0)
            f.load("A", index=0)
            f.store("A", 2, index=0)

        spec = self.make_spec(body)
        control = profile_control(spec)
        ddg = profile_ddg(spec, control, track_anti_output=False)
        kinds = {d.kind for d in ddg.sink.deps}
        assert MEM_ANTI not in kinds and MEM_OUTPUT not in kinds
        assert MEM_FLOW in kinds


class TestStatementsAndDomains:
    def test_statement_contexts_distinguish_call_paths(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.call("leaf", [])
            f.call("leaf", [])
            f.halt()
        with pb.function("leaf", []) as f:
            f.add(1, 1)
            f.ret()
        spec = ProgramSpec("t", pb.build(), lambda: ((), Memory()))
        _, ddg = profile(spec)
        sink = ddg.sink
        uid = find_uid(spec.program, "leaf", "add")
        stmts = [s for k, s in sink.statements.items() if k[0] == uid]
        assert len(stmts) == 2  # two calling contexts

    def test_recursive_contexts_fold_to_one_statement(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.call("R", [0])
            f.halt()
        with pb.function("R", ["n"]) as f:
            f.add("n", 100)
            with f.if_then("lt", "n", 5):
                f.call("R", [f.add("n", 1)])
            f.ret()
        spec = ProgramSpec("t", pb.build(), lambda: ((), Memory()))
        _, ddg = profile(spec)
        sink = ddg.sink
        uid = find_uid(spec.program, "R", "add", 0)
        stmts = [s for k, s in sink.statements.items() if k[0] == uid]
        assert len(stmts) == 1  # recursion folds: one context
        pts = sink.dynamic_instances(uid)
        coords = sorted(c for c, _ in pts)
        assert coords == [(0,), (1,), (2,), (3,), (4,), (5,)]

    def test_domain_points_of_2d_nest(self, layerforward):
        spec, control, ddg = layerforward
        fadd = find_uid(spec.program, "bpnn_layerforward", "fadd")
        pts = ddg.sink.dynamic_instances(fadd)
        coords = sorted(c for c, _ in pts)
        # n2=4 -> 4 j-iterations; n1=5 -> 6 k-iterations
        assert coords == [(j, k) for j in range(4) for k in range(6)]

    def test_labels_memory_addresses(self, layerforward):
        spec, control, ddg = layerforward
        l3 = find_uid(spec.program, "bpnn_layerforward", "load", 0)
        pts = ddg.sink.dynamic_instances(l3)
        for coords, label in pts:
            assert len(label) == 1  # an address
