"""Shadow-memory unit tests."""


from repro.ddg import ShadowMemory


def ref(uid, *coords):
    return ((uid, 0), tuple(coords))


class TestShadowMemory:
    def test_read_before_write_has_no_producer(self):
        sm = ShadowMemory()
        assert sm.on_read(100, ref(1, 0)) is None

    def test_raw_chain(self):
        sm = ShadowMemory()
        w = ref(1, 0)
        sm.on_write(100, w)
        assert sm.on_read(100, ref(2, 0)) == w
        assert sm.on_read(100, ref(2, 1)) == w  # both reads see the write

    def test_waw_returns_previous_writer(self):
        sm = ShadowMemory()
        w1, w2 = ref(1, 0), ref(1, 1)
        sm.on_write(100, w1)
        prev, readers = sm.on_write(100, w2)
        assert prev == w1
        assert readers == []

    def test_war_collects_readers_since_write(self):
        sm = ShadowMemory()
        sm.on_write(100, ref(1, 0))
        r1, r2 = ref(2, 0), ref(3, 0)
        sm.on_read(100, r1)
        sm.on_read(100, r2)
        prev, readers = sm.on_write(100, ref(1, 1))
        assert readers == [r1, r2]
        # the next write sees no stale readers
        _, readers2 = sm.on_write(100, ref(1, 2))
        assert readers2 == []

    def test_addresses_independent(self):
        sm = ShadowMemory()
        sm.on_write(100, ref(1, 0))
        assert sm.on_read(101, ref(2, 0)) is None

    def test_reads_without_write_not_tracked(self):
        """Readers of never-written locations create no WAR bookkeeping
        (there is no value to protect)."""
        sm = ShadowMemory()
        sm.on_read(100, ref(2, 0))
        sm.on_write(100, ref(1, 0))
        _, readers = sm.on_write(100, ref(1, 1))
        assert readers == []

    def test_touched_words(self):
        sm = ShadowMemory()
        sm.on_write(1, ref(1, 0))
        sm.on_write(2, ref(1, 1))
        sm.on_write(1, ref(1, 2))
        assert sm.touched_words == 2
