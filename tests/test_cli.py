"""CLI tests (python -m repro ...)."""


import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "backprop" in out and "streamcluster" in out

    def test_report(self, capsys):
        assert main(["report", "nn"]) == 0
        out = capsys.readouterr().out
        assert "folded statements" in out
        assert "parallel=" in out

    def test_metrics(self, capsys):
        assert main(["metrics", "nn"]) == 0
        out = capsys.readouterr().out
        assert "%Aff" in out and "TileD" in out

    def test_static(self, capsys):
        assert main(["static", "nn"]) == 0
        out = capsys.readouterr().out
        assert "whole region modelable: False" in out

    def test_verify(self, capsys):
        assert main(["verify", "nn"]) == 0
        out = capsys.readouterr().out
        assert "all plans verified" in out

    def test_flamegraph(self, tmp_path, capsys):
        out_file = str(tmp_path / "fg.svg")
        assert main(["flamegraph", "nn", "-o", out_file]) == 0
        with open(out_file) as fh:
            svg = fh.read()
        assert svg.startswith("<svg")

    def test_unknown_workload(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["report", "nope"])

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "backprop" in proc.stdout

    def test_regions(self, capsys):
        assert main(["regions", "nn"]) == 0
        out = capsys.readouterr().out
        assert "candidate regions" in out
        assert "transformable" in out


class TestCliJsonFormat:
    def test_report_json_has_version(self, capsys):
        import json

        assert main(["report", "nn", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] >= 1
        assert doc["kind"] == "report"
        assert doc["workload"] == "nn"
        assert doc["engine"] == "fast"
        assert doc["summary"]["dyn_instrs"] > 0
        assert "poly-prof feedback: nn" in doc["report"]

    def test_metrics_json_has_version(self, capsys):
        import json

        assert main(["metrics", "nn", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] >= 1
        assert doc["kind"] == "metrics"
        assert isinstance(doc["row"], dict)

    def test_json_output_is_deterministic(self, capsys):
        assert main(["report", "nn", "--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(["report", "nn", "--format", "json"]) == 0
        assert capsys.readouterr().out == first

    def test_text_format_unchanged_by_default(self, capsys):
        assert main(["report", "nn"]) == 0
        out = capsys.readouterr().out
        assert not out.lstrip().startswith("{")


class TestCliCache:
    def test_report_cold_then_warm_identical_stdout(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        assert main(["report", "nn", "--cache", cache]) == 0
        cold = capsys.readouterr().out
        assert main(["report", "nn", "--cache", cache]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_env_var_default_and_no_cache(
        self, tmp_path, capsys, monkeypatch
    ):
        cache = str(tmp_path / "envcache")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache)
        assert main(["report", "nn"]) == 0
        capsys.readouterr()
        import os

        assert os.path.isdir(os.path.join(cache, "objects"))
        # cp- + ddg- + man- + one rgn- per function of the nn workload
        from repro.workloads import registry

        n_funcs = len(registry()["nn"]().program.functions)
        assert len(os.listdir(os.path.join(cache, "objects"))) == 3 + n_funcs

        # --no-cache must win over the environment
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never"))
        assert main(["report", "nn", "--no-cache"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "never").exists()

    def test_suite_cache_flags(self, tmp_path, capsys):
        cache = str(tmp_path / "suitecache")
        argv = ["suite", "nn", "nw", "-j", "1", "--cache", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cold" in cold and "cache:" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "warm" in warm
        assert "0 miss(es)" in warm


class TestCliTrace:
    def test_trace_text_summary(self, capsys):
        assert main(["trace", "nn"]) == 0
        out = capsys.readouterr().out
        assert "span tree for nn" in out
        assert "analyze" in out
        assert "instr1" in out and "instr2_fold" in out
        # deep tracing attaches execution counters to the execute spans
        assert "blocks=" in out

    def test_trace_chrome_json_artifact(self, tmp_path, capsys, monkeypatch):
        import json

        from repro.obs import validate_chrome_trace

        monkeypatch.chdir(tmp_path)
        assert main(["trace", "mm", "-o", "trace.json"]) == 0
        out = capsys.readouterr().out
        assert "wrote trace.json" in out
        doc = json.loads((tmp_path / "trace.json").read_text())
        assert validate_chrome_trace(doc) > 0
        assert doc["otherData"]["workload"] == "mm"

    def test_trace_self_flamegraph_default_name(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "mm", "--flame"]) == 0
        assert "wrote mm_selfflame.svg" in capsys.readouterr().out
        svg = (tmp_path / "mm_selfflame.svg").read_text()
        assert "<svg" in svg and "analyze" in svg and "us self" in svg

    def test_trace_flame_explicit_file(self, tmp_path, capsys):
        out_file = str(tmp_path / "self.svg")
        assert main(["trace", "nn", "--flame", out_file]) == 0
        assert f"wrote {out_file}" in capsys.readouterr().out
        assert "<svg" in (tmp_path / "self.svg").read_text()

    def test_trace_json_document(self, capsys):
        import json

        assert main(["trace", "nn", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] >= 1
        assert doc["kind"] == "trace"
        assert doc["workload"] == "nn"
        assert set(doc["timings"]) == {"instr1", "instr2_fold", "feedback"}
        (root,) = doc["spans"]
        assert root["name"] == "analyze"
        assert [c["name"] for c in root["children"]] == [
            "instr1", "instr2_fold", "feedback",
        ]

    def test_trace_mem_records_deltas(self, capsys):
        assert main(["trace", "nn", "--mem"]) == 0
        assert "mem=" in capsys.readouterr().out

    def test_mm_workload_registered(self, capsys):
        assert main(["list"]) == 0
        assert "mm" in capsys.readouterr().out.split()


class TestDiffAndBaseline:
    def test_diff_self_is_clean(self, capsys):
        assert main(["diff", "kmeans", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert "unchanged: 3" in out
        assert "frontier: empty" in out

    def test_diff_with_edit_names_frontier(self, capsys):
        assert main(
            ["diff", "kmeans", "kmeans", "--edit", "assign_points"]
        ) == 0
        out = capsys.readouterr().out
        assert "assign_points" in out and "modified" in out
        assert "re-analysis frontier:" in out
        assert "may-alias via assign_points" in out

    def test_diff_json_document(self, capsys):
        import json

        assert main(
            [
                "diff", "kmeans", "kmeans",
                "--edit", "assign_points", "--format", "json",
            ]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "diff"
        assert doc["summary"]["modified"] == 1
        assert doc["functions"]["assign_points"]["status"] == "modified"
        assert set(doc["frontier"]["funcs"]) == {
            "assign_points", "update_centers",
        }

    def test_diff_unknown_edit_function(self):
        with pytest.raises(SystemExit, match="no such function"):
            main(["diff", "kmeans", "kmeans", "--edit", "nope"])

    def test_baseline_requires_cache(self):
        with pytest.raises(SystemExit, match="artifact store"):
            main(["report", "kmeans", "--no-cache", "--baseline", "kmeans"])

    def test_baseline_bad_ref(self, tmp_path):
        with pytest.raises(SystemExit, match="neither a workload"):
            main(
                [
                    "report", "kmeans",
                    "--cache", str(tmp_path),
                    "--baseline", "zz",
                ]
            )

    def test_baseline_stdout_identical_incremental_on_stderr(
        self, tmp_path, capsys
    ):
        """--baseline must never change stdout; the incremental
        account goes to stderr only."""
        cache = str(tmp_path / "cache")
        assert main(["report", "kmeans", "--cache", cache]) == 0
        capsys.readouterr()
        # cold run of the same (unedited) program, no baseline
        assert main(["report", "kmeans", "--no-cache"]) == 0
        cold = capsys.readouterr()
        assert main(
            ["report", "kmeans", "--cache", cache, "--baseline", "kmeans"]
        ) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "incremental: mode=" in warm.err
