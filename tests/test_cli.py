"""CLI tests (python -m repro ...)."""


import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "backprop" in out and "streamcluster" in out

    def test_report(self, capsys):
        assert main(["report", "nn"]) == 0
        out = capsys.readouterr().out
        assert "folded statements" in out
        assert "parallel=" in out

    def test_metrics(self, capsys):
        assert main(["metrics", "nn"]) == 0
        out = capsys.readouterr().out
        assert "%Aff" in out and "TileD" in out

    def test_static(self, capsys):
        assert main(["static", "nn"]) == 0
        out = capsys.readouterr().out
        assert "whole region modelable: False" in out

    def test_verify(self, capsys):
        assert main(["verify", "nn"]) == 0
        out = capsys.readouterr().out
        assert "all plans verified" in out

    def test_flamegraph(self, tmp_path, capsys):
        out_file = str(tmp_path / "fg.svg")
        assert main(["flamegraph", "nn", "-o", out_file]) == 0
        with open(out_file) as fh:
            svg = fh.read()
        assert svg.startswith("<svg")

    def test_unknown_workload(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["report", "nope"])

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "backprop" in proc.stdout

    def test_regions(self, capsys):
        assert main(["regions", "nn"]) == 0
        out = capsys.readouterr().out
        assert "candidate regions" in out
        assert "transformable" in out
