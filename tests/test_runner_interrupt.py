"""Ctrl-C handling in run_suite: partial results, never a traceback."""

import concurrent.futures

from repro.runner import WorkloadResult, render_suite_table, run_suite


def interrupting_factory():
    """Factory standing in for the user hitting Ctrl-C mid-suite."""
    raise KeyboardInterrupt()


class TestInlineInterrupt:
    def test_partial_results_in_task_order(self):
        results = run_suite(
            ["nn", interrupting_factory, "nw"], jobs=1
        )
        assert [r.name for r in results] == [
            "nn", "interrupting_factory", "nw",
        ]
        assert results[0].ok
        assert not results[1].ok and results[1].interrupted
        assert results[1].status() == "stopped"
        assert "interrupted (SIGINT)" in results[1].error
        # everything after the interrupt is marked, not analyzed
        assert not results[2].ok and results[2].interrupted

    def test_first_task_interrupted_marks_all(self):
        results = run_suite([interrupting_factory, "nn"], jobs=1)
        assert all(r.interrupted for r in results)
        assert all(r.status() == "stopped" for r in results)

    def test_interrupted_rows_render(self):
        results = run_suite([interrupting_factory, "nn"], jobs=1)
        table = render_suite_table(results)
        assert "stopped" in table
        assert "0/2 workloads analyzed" in table


class _FakeFuture:
    def __init__(self, outcome):
        self._outcome = outcome

    def done(self):
        return isinstance(self._outcome, WorkloadResult)

    def cancelled(self):
        return False

    def result(self, timeout=None):
        if isinstance(self._outcome, BaseException):
            raise self._outcome
        return self._outcome


class _FakePool:
    """ProcessPoolExecutor stand-in whose futures replay a scripted
    interrupt: task 0 already finished, task 1 is where the SIGINT
    lands, task 2 never started."""

    instances = []

    def __init__(self, max_workers=None):
        self.shutdown_calls = []
        self._script = iter(
            [
                WorkloadResult(name="nn", ok=True, engine="fast"),
                KeyboardInterrupt(),
                KeyboardInterrupt(),
            ]
        )
        _FakePool.instances.append(self)

    def submit(self, fn, *args, **kwargs):
        return _FakeFuture(next(self._script))

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append(
            {"wait": wait, "cancel_futures": cancel_futures}
        )


class TestPooledInterrupt:
    def test_interrupt_collects_done_and_marks_rest(self, monkeypatch):
        _FakePool.instances = []
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _FakePool
        )
        results = run_suite(["nn", "nw", "lud"], jobs=4)
        assert len(results) == 3
        assert results[0].ok and results[0].name == "nn"
        assert results[1].interrupted and results[1].name == "nw"
        assert results[2].interrupted and results[2].name == "lud"
        # the pool must not be waited on: cancel pending, return now
        (pool,) = _FakePool.instances
        assert pool.shutdown_calls == [
            {"wait": False, "cancel_futures": True}
        ]

    def test_no_interrupt_waits_on_shutdown(self, monkeypatch):
        class _HappyPool(_FakePool):
            def __init__(self, max_workers=None):
                super().__init__(max_workers)
                self._script = iter(
                    [
                        WorkloadResult(name="nn", ok=True),
                        WorkloadResult(name="nw", ok=True),
                    ]
                )

        _FakePool.instances = []
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _HappyPool
        )
        results = run_suite(["nn", "nw"], jobs=4)
        assert all(r.ok for r in results)
        (pool,) = _FakePool.instances
        assert pool.shutdown_calls == [
            {"wait": True, "cancel_futures": False}
        ]
