"""Dataflow solver and analyses: fixpoints over small hand-built CFGs."""

from repro.isa import ProgramBuilder
from repro.dataflow import (
    ConstProp,
    DefSite,
    Liveness,
    MustDefined,
    ReachingDefinitions,
    StaticCFG,
    TypeInference,
    branch_decided,
    build_def_use_chains,
    dominators,
    immediate_dominators,
    solve,
)
from repro.dataflow.values import ANYTYPE, FLOAT, INT, NAC


def build_main(body, params=("n",)):
    pb = ProgramBuilder("t")
    with pb.function("main", list(params)) as f:
        body(f)
        f.halt()
    return pb.build().functions["main"]


def diamond_fn():
    """entry -> then/else -> join; 'x' defined in both arms, 'y' in one."""

    def body(f):
        h = f.if_begin("lt", "n", 10)
        f.set("x", 1)
        f.if_else(h)
        f.set("x", 2)
        f.set("y", 3)
        f.if_end(h)
        f.set("%sink_x", f.add("x", 0))

    return build_main(body)


class TestReachingDefinitions:
    def test_both_arm_defs_reach_the_join(self):
        fn = diamond_fn()
        cfg = StaticCFG(fn)
        sol = solve(ReachingDefinitions(), cfg)
        join = cfg.rpo[-1]
        x_sites = {s for s in sol.entry[join] if s.reg == "x"}
        assert len(x_sites) == 2
        assert all(s.kind == "instr" for s in x_sites)

    def test_param_definition_reaches_entry(self):
        fn = diamond_fn()
        cfg = StaticCFG(fn)
        sol = solve(ReachingDefinitions(), cfg)
        assert DefSite("param", "n", "") in sol.entry[cfg.entry]

    def test_redefinition_kills(self):
        def body(f):
            f.set("x", 1)
            f.set("x", 2)

        fn = build_main(body)
        cfg = StaticCFG(fn)
        sol = solve(ReachingDefinitions(), cfg)
        x_sites = {s for s in sol.exit[cfg.entry] if s.reg == "x"}
        assert len(x_sites) == 1


class TestMustDefined:
    def test_one_arm_def_is_not_must(self):
        fn = diamond_fn()
        cfg = StaticCFG(fn)
        sol = solve(MustDefined(), cfg)
        join = cfg.rpo[-1]
        assert "x" in sol.entry[join]
        assert "y" not in sol.entry[join]


class TestLiveness:
    def test_loop_carried_register_stays_live(self):
        def body(f):
            f.set("acc", 0)
            with f.loop(0, "n") as i:
                f.add("acc", i, into="acc")
            f.set("%sink", f.add("acc", 0))

        fn = build_main(body)
        cfg = StaticCFG(fn)
        sol = solve(Liveness(), cfg)
        header = next(b for b in cfg.rpo if "head" in b or "loop" in b)
        assert "acc" in sol.entry[header]

    def test_dead_after_last_use(self):
        def body(f):
            f.set("x", 1)
            f.set("%sink", f.add("x", 0))

        fn = build_main(body)
        cfg = StaticCFG(fn)
        sol = solve(Liveness(), cfg)
        assert "x" not in sol.exit[cfg.rpo[-1]]


class TestDominance:
    def test_diamond_idoms(self):
        fn = diamond_fn()
        cfg = StaticCFG(fn)
        doms = dominators(cfg)
        idom = immediate_dominators(cfg)
        join = cfg.rpo[-1]
        assert idom[cfg.entry] is None
        assert idom[join] == cfg.entry
        # the entry dominates everything reachable
        assert all(cfg.entry in doms[b] for b in cfg.rpo)


class TestDefUseChains:
    def test_undefined_and_maybe_undefined(self):
        def body(f):
            h = f.if_begin("lt", "n", 10)
            f.set("y", 3)
            f.if_end(h)
            f.set("%sink1", f.add("y", 0))      # defined on one path only
            f.set("%sink2", f.add("ghost", 0))  # never defined anywhere

        fn = build_main(body)
        chains = build_def_use_chains(fn)
        assert {u.reg for u in chains.undefined_uses} == {"ghost"}
        assert "y" in {u.reg for u in chains.maybe_undefined_uses}

    def test_dead_defs(self):
        def body(f):
            f.set("unused", 7)

        fn = build_main(body)
        dead = {d.reg for d in build_def_use_chains(fn).dead_defs()}
        assert "unused" in dead
        assert "n" in dead  # the parameter is never read either


class TestValueAnalyses:
    def test_constprop_decides_branch(self):
        def body(f):
            f.set("k", 4)
            with f.if_then("lt", "k", 10):
                f.set("%sink", 1)

        fn = build_main(body)
        cfg = StaticCFG(fn)
        sol = solve(ConstProp(), cfg)
        for b in cfg.rpo:
            term = cfg.block(b).terminator
            if hasattr(term, "rel"):
                assert branch_decided(term, sol.exit[b]) is True
                break
        else:  # pragma: no cover
            raise AssertionError("no CondBr found")

    def test_constprop_loop_iv_goes_nac(self):
        def body(f):
            with f.loop(0, "n") as i:
                f.set("%sink", f.add(i, 0))

        fn = build_main(body)
        cfg = StaticCFG(fn)
        sol = solve(ConstProp(), cfg)
        header = next(b for b in cfg.rpo if "head" in b or "loop" in b)
        ivs = [r for r in sol.entry[header].env if r.startswith("%iv")]
        assert ivs and all(sol.entry[header].get(r) is NAC for r in ivs)

    def test_type_inference(self):
        def body(f):
            f.set("i", 1)
            f.set("x", 2.5)
            f.set("m", f.load("n", offset=0))

        fn = build_main(body)
        cfg = StaticCFG(fn)
        sol = solve(TypeInference(), cfg)
        env = sol.exit[cfg.entry]
        assert env.get("i") is INT
        assert env.get("x") is FLOAT
        assert env.get("m") is ANYTYPE
