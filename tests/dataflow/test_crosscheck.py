"""Cross-checker tests: a clean analysis passes, tampered ones don't.

Each tamper test injects one specific lie into a finished
:class:`AnalysisResult` -- a dropped dependence, an invented one, a
miscount, a shape violation, a bogus parallel claim -- and asserts the
matching sanitizer catches exactly that lie.
"""

import dataclasses

import pytest

from repro.ddg.graph import DepKey
from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, analyze
from repro.dataflow import CheckOptions, run_crosscheck
from repro.dataflow.crosscheck import opposite_engine


def veccopy_spec(n=8):
    pb = ProgramBuilder("veccopy")
    with pb.function("main", ["A", "B", "n"]) as f:
        with f.loop(0, "n") as i:
            f.store("B", f.load("A", index=i), index=i)
        f.halt()

    def make_state():
        mem = Memory()
        a = mem.alloc_array([float(i) for i in range(n)])
        b = mem.alloc(n, init=0.0)
        return (a, b, n), mem

    return ProgramSpec(name="veccopy", program=pb.build(),
                       make_state=make_state)


def prefix_sum_spec(n=8):
    """B[i] = B[i-1] + A[i]: the loop is genuinely sequential."""
    pb = ProgramBuilder("prefix")
    with pb.function("main", ["A", "B", "n"]) as f:
        with f.loop(1, "n") as i:
            prev = f.load("B", index=f.sub(i, 1))
            a = f.load("A", index=i)
            f.store("B", f.fadd(prev, a), index=i)
        f.halt()

    def make_state():
        mem = Memory()
        a = mem.alloc_array([float(i) for i in range(n)])
        b = mem.alloc(n, init=0.0)
        return (a, b, n), mem

    return ProgramSpec(name="prefix", program=pb.build(),
                       make_state=make_state)


def recheck(result, **only):
    opts = CheckOptions(
        recount=only.get("recount", False),
        dep_shape=only.get("dep_shape", False),
        affine_static=only.get("affine_static", False),
        parallel_claims=only.get("parallel_claims", False),
    )
    return run_crosscheck(result, opts)


class TestCleanRuns:
    def test_all_checks_pass_both_engines(self):
        for engine in ("fast", "reference"):
            result = analyze(veccopy_spec(), engine=engine,
                             crosscheck=True)
            report = result.crosscheck
            assert report.ok, report.render()
            assert list(report.checks_run) == [
                "recount", "dep-shape", "affine-static", "parallel-claim"
            ]
            assert report.recount_engine == opposite_engine(engine)

    def test_sequential_loop_passes_without_parallel_claim(self):
        result = analyze(prefix_sum_spec(), crosscheck=True)
        assert result.crosscheck.ok, result.crosscheck.render()


class TestRecountTamper:
    def test_dropped_dependence_detected(self):
        result = analyze(veccopy_spec())
        key = next(iter(result.folded.deps))
        del result.folded.deps[key]
        report = recheck(result, recount=True)
        assert not report.ok
        assert any("dropped" in v.message for v in report.violations)

    def test_invented_dependence_detected(self):
        result = analyze(veccopy_spec())
        key, fd = next(iter(result.folded.deps.items()))
        fake = DepKey(src=(999, key.src[1]), dst=key.dst, kind=key.kind)
        result.folded.deps[fake] = dataclasses.replace(fd, key=fake)
        report = recheck(result, recount=True)
        assert any("invented" in v.message for v in report.violations)

    def test_count_mismatch_detected(self):
        result = analyze(veccopy_spec())
        fd = next(iter(result.folded.deps.values()))
        fd.count += 1
        report = recheck(result, recount=True)
        assert any("folded count" in v.message for v in report.violations)

    def test_statement_count_mismatch_detected(self):
        result = analyze(veccopy_spec())
        fs = next(iter(result.folded.statements.values()))
        fs.count += 3
        report = recheck(result, recount=True)
        assert any("folded count" in v.message for v in report.violations)


class TestDepShapeTamper:
    def test_wrong_kind_detected(self):
        result = analyze(prefix_sum_spec())
        key, fd = next(
            (k, d) for k, d in result.folded.deps.items() if k.kind == "flow"
        )
        del result.folded.deps[key]
        bad = DepKey(src=key.src, dst=key.dst, kind="anti")
        result.folded.deps[bad] = dataclasses.replace(fd, key=bad)
        report = recheck(result, dep_shape=True)
        assert any("anti dependence" in v.message for v in report.violations)

    def test_nonexistent_endpoint_detected(self):
        result = analyze(veccopy_spec())
        key, fd = next(iter(result.folded.deps.items()))
        bad = DepKey(src=(999, key.src[1]), dst=key.dst, kind=key.kind)
        result.folded.deps[bad] = dataclasses.replace(fd, key=bad)
        report = recheck(result, dep_shape=True)
        assert any("does not exist" in v.message for v in report.violations)

    def test_reg_dep_from_store_detected(self):
        # a store defines no register: a "reg" edge out of it is a lie
        result = analyze(prefix_sum_spec())
        key, fd = next(
            (k, d) for k, d in result.folded.deps.items() if k.kind == "flow"
        )
        bad = DepKey(src=key.src, dst=key.dst, kind="reg")
        result.folded.deps[bad] = dataclasses.replace(fd, key=bad)
        report = recheck(result, dep_shape=True)
        assert any("defines no register" in v.message
                   for v in report.violations)

    def test_unrelated_reg_dep_detected(self):
        # thread a reg edge between two real instructions with no
        # static def->use path between them
        result = analyze(veccopy_spec())
        key, fd = next(
            (k, d) for k, d in result.folded.deps.items() if k.kind == "reg"
        )
        # reverse it: the consumer does not feed the producer
        bad = DepKey(src=key.dst, dst=key.src, kind="reg")
        if bad in result.folded.deps:  # pragma: no cover - tiny kernel
            pytest.skip("reversed edge exists")
        result.folded.deps[bad] = dataclasses.replace(fd, key=bad)
        report = recheck(result, dep_shape=True)
        assert any("does not statically reach" in v.message
                   for v in report.violations) or \
            any("defines no register" in v.message
                for v in report.violations)


class TestParallelClaimTamper:
    def test_false_parallel_claim_detected(self):
        result = analyze(prefix_sum_spec())
        tampered = 0
        for node in result.forest.walk():
            if node.parallel is False:
                node.parallel = True
                tampered += 1
        assert tampered, "expected a sequential loop to tamper"
        report = recheck(result, parallel_claims=True)
        assert not report.ok
        assert all(v.check == "parallel-claim" for v in report.violations)

    def test_honest_claims_pass(self):
        result = analyze(veccopy_spec())
        report = recheck(result, parallel_claims=True)
        assert report.ok, report.render()
        assert report.stats["parallel_claims_checked"] >= 1
