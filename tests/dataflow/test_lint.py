"""Linter tests: one crafted defective program per rule.

Invalid programs (the ones :meth:`Program.validate` rejects) are built
from the raw containers, bypassing the builder; the linter must report
them without raising.
"""

import pytest

from repro.isa import ProgramBuilder
from repro.isa.instructions import Call, CondBr, Halt, Instr, Jump, Return
from repro.isa.program import Function, Program
from repro.dataflow import lint_program
from repro.workloads import all_workloads


def raw_fn(name, params, blocks, entry="entry"):
    fn = Function(name=name, params=tuple(params), entry=entry)
    for bname, (instrs, term) in blocks.items():
        bb = fn.add_block(bname)
        bb.instrs.extend(instrs)
        bb.terminator = term
    return fn


def raw_prog(*fns, main="main"):
    p = Program(main=main, name="t")
    for fn in fns:
        p.add_function(fn)
    return p


def built(body, params=("n",)):
    pb = ProgramBuilder("t")
    with pb.function("main", list(params)) as f:
        body(f)
        f.halt()
    return pb.build()


def rules_of(program, severity=None):
    report = lint_program(program)
    diags = report.diagnostics
    if severity is not None:
        diags = [d for d in diags if d.severity == severity]
    return {d.rule for d in diags}


class TestDefectClasses:
    def test_uninitialized_read(self):
        prog = raw_prog(raw_fn("main", (), {
            "entry": ([Instr(1, "add", "x", ("ghost", 1))], Halt()),
        }))
        report = lint_program(prog)
        errs = [d for d in report.errors if d.rule == "uninitialized-read"]
        assert len(errs) == 1
        assert errs[0].uid == 1 and "ghost" in errs[0].message
        # validate would reject nothing here, but the VM would fault;
        # the linter catches it statically
        assert not report.clean

    def test_maybe_uninitialized(self):
        def body(f):
            h = f.if_begin("lt", "n", 10)
            f.set("y", 3)
            f.if_end(h)
            f.set("%sink", f.add("y", 0))

        assert "maybe-uninitialized" in rules_of(built(body), "warning")

    def test_unreachable_block(self):
        prog = raw_prog(raw_fn("main", (), {
            "entry": ([], Halt()),
            "island": ([], Halt()),
        }))
        report = lint_program(prog)
        diags = [d for d in report.warnings if d.rule == "unreachable-block"]
        assert [d.block for d in diags] == ["island"]

    def test_dead_store_and_sink_exemption(self):
        def body(f):
            f.set("wasted", 7)
            f.set("%sink_ok", 8)

        report = lint_program(built(body))
        dead = [d for d in report.warnings if d.rule == "dead-store"]
        assert len(dead) == 1
        assert "wasted" in dead[0].message

    def test_type_confusion_float_into_bitwise_is_error(self):
        def body(f):
            x = f.const(1.5)
            f.set("%sink", f.emit("and", [x, 3], dest=f.fresh_reg()))

        assert "type-confusion" in rules_of(built(body), "error")

    def test_type_confusion_float_into_add_is_warning(self):
        def body(f):
            x = f.const(1.5)
            f.set("%sink", f.add(x, 3))

        prog = built(body)
        assert "type-confusion" in rules_of(prog, "warning")
        assert "type-confusion" not in rules_of(prog, "error")

    def test_type_confusion_int_into_float_op_is_warning(self):
        def body(f):
            x = f.const(3)
            f.set("%sink", f.fadd(x, 1.0))

        assert "type-confusion" in rules_of(built(body), "warning")

    def test_arity_mismatch(self):
        prog = raw_prog(
            raw_fn("main", (), {
                "entry": ([], Call("g", (1, 2), None, "done")),
                "done": ([], Halt()),
            }),
            raw_fn("g", ("x",), {"entry": ([], Return())}),
        )
        with pytest.raises(ValueError, match="arity"):
            prog.validate()
        diags = [d for d in lint_program(prog).errors if d.rule == "call-arity"]
        assert len(diags) == 1 and "2" in diags[0].message

    def test_unknown_callee(self):
        prog = raw_prog(raw_fn("main", (), {
            "entry": ([], Call("nowhere", (), None, "done")),
            "done": ([], Halt()),
        }))
        with pytest.raises(ValueError, match="unknown function"):
            prog.validate()
        assert "unknown-callee" in rules_of(prog, "error")

    def test_bad_relation(self):
        # CondBr.__post_init__ rejects bad relations, so smuggle one in
        br = object.__new__(CondBr)
        for k, v in dict(
            rel="spaceship", a=1, b=2, taken="entry", not_taken="done"
        ).items():
            object.__setattr__(br, k, v)
        prog = raw_prog(raw_fn("main", (), {
            "entry": ([], br),
            "done": ([], Halt()),
        }))
        with pytest.raises(ValueError, match="relation"):
            prog.validate()
        diags = [d for d in lint_program(prog).errors if d.rule == "bad-relation"]
        assert len(diags) == 1 and "spaceship" in diags[0].message

    def test_duplicate_uid_across_functions(self):
        prog = raw_prog(
            raw_fn("main", (), {
                "entry": ([Instr(7, "const", "a", (1,))],
                          Call("g", (), None, "done")),
                "done": ([], Halt()),
            }),
            raw_fn("g", (), {
                "entry": ([Instr(7, "const", "b", (2,))], Return()),
            }),
        )
        with pytest.raises(ValueError, match="duplicate uid"):
            prog.validate()
        diags = [d for d in lint_program(prog).errors
                 if d.rule == "duplicate-uid"]
        assert len(diags) == 1 and diags[0].uid == 7

    def test_dead_function(self):
        prog = raw_prog(
            raw_fn("main", (), {"entry": ([], Halt())}),
            raw_fn("orphan", (), {"entry": ([], Return())}),
        )
        diags = [d for d in lint_program(prog).warnings
                 if d.rule == "dead-function"]
        assert len(diags) == 1
        assert diags[0].function == "orphan"
        assert "main" in diags[0].message and "_" in diags[0].message

    def test_dead_function_transitive_reachability(self):
        # main -> a -> b keeps b alive; c is dead even though it
        # *would* call b -- reachability is rooted at the entry point
        prog = raw_prog(
            raw_fn("main", (), {
                "entry": ([], Call("a", (), None, "done")),
                "done": ([], Halt()),
            }),
            raw_fn("a", (), {
                "entry": ([], Call("b", (), None, "done")),
                "done": ([], Return()),
            }),
            raw_fn("b", (), {"entry": ([], Return())}),
            raw_fn("c", (), {
                "entry": ([], Call("b", (), None, "done")),
                "done": ([], Return()),
            }),
        )
        dead = {d.function for d in lint_program(prog).warnings
                if d.rule == "dead-function"}
        assert dead == {"c"}

    def test_dead_function_underscore_exemption(self):
        prog = raw_prog(
            raw_fn("main", (), {"entry": ([], Halt())}),
            raw_fn("_kept", (), {"entry": ([], Return())}),
        )
        assert "dead-function" not in rules_of(prog)

    def test_dead_function_skipped_when_entry_missing(self):
        # no main at all: validate-level breakage, rule stays silent
        prog = raw_prog(
            raw_fn("f", (), {"entry": ([], Return())}), main="main"
        )
        assert "dead-function" not in rules_of(prog)

    def test_infinite_loop(self):
        prog = raw_prog(raw_fn("main", (), {
            "entry": ([], Jump("spin")),
            "spin": ([], Jump("spin")),
        }))
        diags = [d for d in lint_program(prog).errors
                 if d.rule == "infinite-loop"]
        assert [d.block for d in diags] == ["spin"]

    def test_infinite_loop_via_constant_branch(self):
        # the exit test compares constants that never change: the branch
        # is decided, so the "exit" edge is statically dead
        def body(f):
            f.set("k", 0)
            w = f.while_begin()
            f.while_cond(w, "lt", "k", 10)  # k stays 0: always taken
            f.set("%sink", 1)
            f.while_end(w)

        assert "infinite-loop" in rules_of(built(body), "error")

    def test_counted_loop_is_not_infinite(self):
        def body(f):
            with f.loop(0, "n") as i:
                f.set("%sink", f.add(i, 0))

        assert "infinite-loop" not in rules_of(built(body))

    def test_div_by_zero(self):
        def body(f):
            f.set("z", 0)
            f.set("%sink", f.div("n", "z"))

        diags = [d for d in lint_program(built(body)).errors
                 if d.rule == "div-by-zero"]
        assert len(diags) == 1

    def test_unused_param_and_call_result_are_info(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            r = f.call("g", [5], want_result=True)
            del r  # bound but never read by the program
            f.halt()
        with pb.function("g", ["x"]) as f:
            f.ret(0)
        report = lint_program(pb.build())
        assert report.clean  # infos don't dirty the report
        rules = {d.rule for d in report.by_severity("info")}
        assert rules == {"unused-param", "unused-call-result"}


class TestReportPlumbing:
    def test_as_dict_and_render(self):
        prog = raw_prog(raw_fn("main", (), {
            "entry": ([Instr(1, "add", "x", ("ghost", 1))], Halt()),
        }))
        report = lint_program(prog)
        d = report.as_dict()
        assert d["errors"] == 1
        assert d["diagnostics"][0]["rule"] == "uninitialized-read"
        assert "uninitialized-read" in report.render()

    def test_all_workloads_lint_clean(self):
        for name, factory in sorted(all_workloads().items()):
            report = lint_program(factory().program)
            assert report.clean, f"{name}:\n{report.render()}"
