"""Unit tests for the routing layer: whole-stream routing, order
recording, chunk flushing, and the order-preserving merge."""

import pytest

from repro.ddg.graph import DepKey, Statement
from repro.folding.folder import FoldedDDG
from repro.isa.program import Instr
from repro.parallel import (
    ShardRouter,
    apply_chunk,
    merge_shards,
    shard_of_dep,
    shard_of_stmt,
)


def _stmt(uid, cid=0, depth=1):
    instr = Instr(uid=uid, opcode="add", dest="r0", srcs=("r1", "r2"))
    ctx = tuple(("f", f"loop{i}") for i in range(depth)) + (("f", "bb"),)
    return Statement(key=(uid, cid), instr=instr, func="f", context=ctx)


def _dep(src_uid, dst_uid, kind="reg"):
    return DepKey(src=(src_uid, 0), dst=(dst_uid, 0), kind=kind)


class _Collector:
    """Captures emitted chunks per shard, in emission order."""

    def __init__(self):
        self.chunks = []  # (shard, chunk)

    def __call__(self, shard, chunk):
        self.chunks.append((shard, list(chunk)))

    def events_for(self, shard):
        out = []
        for s, chunk in self.chunks:
            if s == shard:
                out.extend(chunk)
        return out


class TestShardFunctions:
    def test_deterministic_and_in_range(self):
        for nshards in (1, 2, 3, 7, 16):
            for uid in range(200):
                s1 = shard_of_stmt((uid, uid % 3), nshards)
                s2 = shard_of_stmt((uid, uid % 3), nshards)
                assert s1 == s2
                assert 0 <= s1 < nshards
                d = _dep(uid, uid + 1)
                assert 0 <= shard_of_dep(d, nshards) < nshards

    def test_spreads_across_shards(self):
        # not a balance guarantee, just "the hash is not constant"
        shards = {shard_of_stmt((uid, 0), 4) for uid in range(64)}
        assert len(shards) > 1


class TestRouting:
    def test_whole_stream_routing_preserves_order(self):
        emit = _Collector()
        router = ShardRouter(3, emit, flush_points=1)
        stmts = [_stmt(i) for i in range(6)]
        for s in stmts:
            router.declare_statement(s)
        # two "block executions" delivering batched points
        items = [(s.key, (i,)) for i, s in enumerate(stmts)]
        router.instr_points((0,), items)
        router.instr_points((1,), items)
        router.flush()
        seen = set()
        for shard in range(3):
            events = emit.events_for(shard)
            keys_here = {e[1].key for e in events if e[0] == "S"}
            seen |= keys_here
            # every point event's statements belong to this shard
            for e in events:
                if e[0] == "I":
                    for key, _label in e[2]:
                        assert router.stmt_shard[key] == shard
            # per-shard batch order: declaration first, then coords 0, 1
            coords = [e[1] for e in events if e[0] == "I"]
            if keys_here:
                assert coords == [(0,), (1,)]
        assert seen == {s.key for s in stmts}
        assert router.stmt_order == [s.key for s in stmts]

    def test_batch_split_plan_partitions_items(self):
        emit = _Collector()
        router = ShardRouter(2, emit, flush_points=10**9)
        stmts = [_stmt(i) for i in range(5)]
        for s in stmts:
            router.declare_statement(s)
        items = [(s.key, ()) for s in stmts]
        router.instr_points((7,), items)
        router.flush()
        all_keys = []
        for shard in range(2):
            for e in emit.events_for(shard):
                if e[0] == "I":
                    all_keys.extend(k for k, _ in e[2])
        # exactly a partition: nothing lost, nothing duplicated
        assert sorted(all_keys) == sorted(s.key for s in stmts)

    def test_dep_first_appearance_order_recorded(self):
        emit = _Collector()
        router = ShardRouter(4, emit, flush_points=10**9)
        d1, d2, d3 = _dep(1, 2), _dep(2, 3, "flow"), _dep(1, 3, "anti")
        router.dep_points((0,), [(d1, (0,)), (d2, (0,))])
        router.dep_point(d3, (1,), (0,))
        router.dep_points((2,), [(d2, (1,)), (d1, (1,))])
        assert router.dep_order == [d1, d2, d3]
        router.flush()
        # per-dep events all live on that dep's shard, in point order
        for dep in (d1, d2, d3):
            shard = router.dep_shard[dep]
            pts = []
            for e in emit.events_for(shard):
                if e[0] == "D":
                    pts.extend(
                        (e[1], src) for dd, src in e[2] if dd == dep
                    )
                elif e[0] == "Q" and e[1] == dep:
                    pts.append((e[2], e[3]))
            if dep is d1:
                assert pts == [((0,), (0,)), ((2,), (1,))]
            elif dep is d2:
                assert pts == [((0,), (0,)), ((2,), (1,))]
            else:
                assert pts == [((1,), (0,))]

    def test_flush_threshold_ships_chunks_early(self):
        emit = _Collector()
        router = ShardRouter(1, emit, flush_points=4)
        s = _stmt(1)
        router.declare_statement(s)
        for i in range(10):
            router.instr_point(s.key, (i,), ())
        assert emit.chunks  # shipped before flush()
        router.flush()
        events = emit.events_for(0)
        assert [e[0] for e in events][0] == "S"
        assert sum(1 for e in events if e[0] == "P") == 10

    def test_custom_routes_override_hash(self):
        emit = _Collector()
        router = ShardRouter(
            4,
            emit,
            flush_points=10**9,
            stmt_route=lambda key, n: 0,
            dep_route=lambda dep, n: n - 1,
        )
        s = _stmt(9)
        router.declare_statement(s)
        router.instr_point(s.key, (0,), ())
        router.dep_point(_dep(9, 9), (0,), (0,))
        router.flush()
        assert router.stmt_shard[s.key] == 0
        assert router.dep_shard[_dep(9, 9)] == 3
        assert len(emit.events_for(0)) == 2
        assert len(emit.events_for(3)) == 1

    def test_nshards_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardRouter(0, lambda s, c: None)


class TestApplyChunk:
    def test_replay_matches_direct_delivery(self):
        from repro.folding import FastFoldingSink

        direct = FastFoldingSink()
        replay = FastFoldingSink()
        s1, s2 = _stmt(1), _stmt(2)
        dep = _dep(1, 2)
        events = [
            ("S", s1),
            ("S", s2),
            ("I", (0,), [(s1.key, (10,)), (s2.key, (20,))]),
            ("I", (1,), [(s1.key, (11,)), (s2.key, (21,))]),
            ("D", (1,), [(dep, (0,))]),
            ("P", s1.key, (2,), (12,)),
            ("Q", dep, (2,), (1,)),
        ]
        direct.declare_statement(s1)
        direct.declare_statement(s2)
        direct.instr_points((0,), [(s1.key, (10,)), (s2.key, (20,))])
        direct.instr_points((1,), [(s1.key, (11,)), (s2.key, (21,))])
        direct.dep_points((1,), [(dep, (0,))])
        direct.instr_point(s1.key, (2,), (12,))
        direct.dep_point(dep, (2,), (1,))
        points = apply_chunk(replay, events)
        assert points == 7
        from repro.folding.codec import encode_folded_ddg

        assert encode_folded_ddg(replay.finalize()) == encode_folded_ddg(
            direct.finalize()
        )

    def test_unknown_tag_rejected(self):
        from repro.folding import FastFoldingSink

        with pytest.raises(ValueError):
            apply_chunk(FastFoldingSink(), [("X", None)])


class TestMerge:
    def _folded(self, stmt_uids, dep_pairs):
        from repro.folding import FastFoldingSink

        sink = FastFoldingSink()
        for uid in stmt_uids:
            s = _stmt(uid)
            sink.declare_statement(s)
            sink.instr_point(s.key, (uid,), ())
        for src, dst in dep_pairs:
            sink.dep_point(_dep(src, dst), (dst,), (src,))
        return sink.finalize()

    def test_merge_rebuilds_serial_order(self):
        a = self._folded([2, 4], [(2, 4)])
        b = self._folded([1, 3], [(1, 3)])
        stmt_order = [(1, 0), (2, 0), (3, 0), (4, 0)]
        stmt_shard = {(1, 0): 1, (2, 0): 0, (3, 0): 1, (4, 0): 0}
        dep_order = [_dep(1, 3), _dep(2, 4)]
        dep_shard = {_dep(1, 3): 1, _dep(2, 4): 0}
        merged = merge_shards([a, b], stmt_shard, stmt_order,
                              dep_shard, dep_order)
        assert isinstance(merged, FoldedDDG)
        assert list(merged.statements) == stmt_order
        assert list(merged.deps) == dep_order

    def test_merge_detects_unrouted_streams(self):
        a = self._folded([1, 2], [])
        with pytest.raises(ValueError):
            merge_shards([a], {(1, 0): 0}, [(1, 0)], {}, [])
