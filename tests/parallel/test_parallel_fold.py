"""End-to-end parallel folding: bit-identity with the serial fold,
adversarial shard boundaries, cache interplay, trace fan-out, and the
suite runner surface.

The contract under test is the strongest one the pipeline makes:
``analyze(spec, fold_jobs=N)`` must be *byte-identical* to
``analyze(spec)`` after codec round-trip, for every N, on both
engines -- not merely equivalent.
"""

import json
import os

import pytest

from repro.ddg.graph import DepKey, Statement
from repro.folding import FastFoldingSink
from repro.folding.codec import encode_folded_ddg
from repro.folding.folder import FoldingSink
from repro.isa.instructions import Instr
from repro.obs import Tracer, validate_chrome_trace
from repro.obs.chrometrace import chrome_trace_document
from repro.parallel import ParallelFoldManager
from repro.pipeline import analyze
from repro.runner import render_suite_table, run_suite
from repro.store import ArtifactStore, keys_for_spec
from repro.workloads import all_workloads

CPU = os.cpu_count() or 1
#: shard counts exercised by the identity matrix (always >= 2 so the
#: parallel code path actually runs, even on a single-core host)
SHARD_COUNTS = sorted({2, 3, 7, max(2, CPU)})


def _spec(name="nn"):
    return all_workloads()[name]()


def _blob(result):
    """Canonical bytes of a folded DDG after codec round-trip."""
    return json.dumps(encode_folded_ddg(result.folded), sort_keys=False)


def _stage2_key(spec):
    return keys_for_spec(
        spec,
        engine="fast",
        fuel=50_000_000,
        max_pieces=6,
        clamp=None,
        track_anti_output=True,
        build_schedule_tree=True,
    ).stage2


class TestBitIdentity:
    @pytest.mark.parametrize("jobs", SHARD_COUNTS)
    def test_fast_engine_matrix(self, jobs):
        serial = analyze(_spec())
        par = analyze(_spec(), fold_jobs=jobs)
        assert _blob(par) == _blob(serial)
        assert par.fold_jobs == jobs
        assert par.shard_seconds is not None
        assert len(par.shard_seconds) == jobs
        assert serial.shard_seconds is None

    @pytest.mark.parametrize("jobs", (2, 3))
    def test_reference_engine(self, jobs):
        serial = analyze(_spec(), engine="reference")
        par = analyze(_spec(), engine="reference", fold_jobs=jobs)
        assert _blob(par) == _blob(serial)

    def test_larger_workload(self):
        serial = analyze(_spec("backprop"))
        par = analyze(_spec("backprop"), fold_jobs=3)
        assert _blob(par) == _blob(serial)

    def test_crosscheck_green_over_parallel_fold(self):
        result = analyze(_spec(), fold_jobs=2, crosscheck=True)
        assert result.crosscheck is not None
        assert result.crosscheck.violations == []

    def test_fold_jobs_one_is_the_serial_path(self):
        result = analyze(_spec(), fold_jobs=1)
        assert result.fold_jobs == 1
        assert result.shard_seconds is None


def _stmt(uid, cid=0, depth=1):
    instr = Instr(uid=uid, opcode="add", dest="r0", srcs=("r1", "r2"))
    ctx = tuple(("f", f"loop{i}") for i in range(depth)) + (("f", "bb"),)
    return Statement(key=(uid, cid), instr=instr, func="f", context=ctx)


def _dep(src_uid, dst_uid, kind="reg"):
    return DepKey(src=(src_uid, 0), dst=(dst_uid, 0), kind=kind)


def _drive(sink, n_stmts=12, iters=40, batched=True):
    """A small synthetic stream -- identical for every sink it is fed
    to.  Delivery style matches how the engines really drive sinks:
    the fast engine emits only batched per-block calls, the reference
    engine only unbatched per-point calls (the fast sink's shared
    group folders make mixed delivery to the *same* statement
    intentionally out of contract)."""
    stmts = [_stmt(uid) for uid in range(n_stmts)]
    for s in stmts:
        sink.declare_statement(s)
    deps = [_dep(i, i + 1) for i in range(n_stmts - 1)]
    deps += [_dep(i, i + 2, "flow") for i in range(n_stmts - 2)]
    for it in range(iters):
        if batched:
            sink.instr_points(
                (it,), [(s.key, (it * 2,)) for s in stmts]
            )
            sink.dep_points((it,), [(d, (max(0, it - 1),)) for d in deps])
        else:
            for s in stmts:
                sink.instr_point(s.key, (it,), (it * 2,))
            for d in deps:
                sink.dep_point(d, (it,), (max(0, it - 1),))
    if batched:
        # one more full-group block at fresh coordinates (a prefix
        # batch -- partial delivery from a faulting block -- can only
        # be the final event of a *crashed* run, which never reaches
        # finalize, so it is out of the equivalence contract)
        sink.instr_points(
            (iters,), [(s.key, (iters * 2,)) for s in stmts]
        )
    else:
        for s in stmts[:3]:
            sink.instr_point(s.key, (iters,), (iters * 2,))
        sink.dep_point(deps[0], (iters,), (iters - 1,))


ADVERSARIAL_ROUTES = {
    "one_giant_shard": (lambda key, n: 0, lambda dep, n: 0),
    "last_shard_only": (lambda key, n: n - 1, lambda dep, n: n - 1),
    "stmts_vs_deps_split": (lambda key, n: 0, lambda dep, n: n - 1),
    "single_statement_shards": (
        lambda key, n: key[0] % n,
        lambda dep, n: dep.src[0] % n,
    ),
}


class TestAdversarialBoundaries:
    """Forced shard boundaries -- empty shards, one giant shard,
    single-statement shards -- must still merge to the exact serial
    fold on both engines."""

    @pytest.mark.parametrize("engine", ("fast", "reference"))
    @pytest.mark.parametrize(
        "route_name", sorted(ADVERSARIAL_ROUTES)
    )
    def test_routes_merge_to_serial(self, engine, route_name):
        stmt_route, dep_route = ADVERSARIAL_ROUTES[route_name]
        batched = engine == "fast"
        serial = (
            FastFoldingSink() if engine == "fast" else FoldingSink()
        )
        _drive(serial, batched=batched)
        with ParallelFoldManager(
            jobs=4,
            engine=engine,
            stmt_route=stmt_route,
            dep_route=dep_route,
        ) as manager:
            _drive(manager.router, batched=batched)
            folded = manager.finalize()
        assert json.dumps(encode_folded_ddg(folded)) == json.dumps(
            encode_folded_ddg(serial.finalize())
        )

    def test_more_shards_than_statements(self):
        serial = FastFoldingSink()
        _drive(serial, n_stmts=3)
        with ParallelFoldManager(jobs=7) as manager:
            _drive(manager.router, n_stmts=3)
            folded = manager.finalize()
        assert json.dumps(encode_folded_ddg(folded)) == json.dumps(
            encode_folded_ddg(serial.finalize())
        )

    def test_shard_stats_account_for_every_event(self):
        with ParallelFoldManager(jobs=3) as manager:
            _drive(manager.router)
            manager.finalize()
            stats = manager.shard_stats
        assert len(stats) == 3
        assert [s["events"] for s in stats] == (
            manager.router.events_routed
        )
        assert all(s["busy_seconds"] >= 0.0 for s in stats)


class TestCacheInterplay:
    """fold_jobs must be invisible to the artifact store: same keys,
    same bytes, warm hits served across fold_jobs settings."""

    def test_identical_ddg_artifact_payload(self, tmp_path):
        """Same stage-2 key, same artifact payload.  ``wall_seconds``
        (what the producing run measured) is the one field that
        differs between any two runs, parallel or not; everything
        else -- the folded DDG, stats, schedule tree, dep vectors --
        must be byte-equal after canonical JSON dumping."""
        key = _stage2_key(_spec())
        serial_store = ArtifactStore(str(tmp_path / "serial"))
        par_store = ArtifactStore(str(tmp_path / "parallel"))
        analyze(_spec(), store=serial_store)
        analyze(_spec(), store=par_store, fold_jobs=3)
        serial_doc = serial_store.get(key)
        par_doc = par_store.get(key)
        assert serial_doc is not None and par_doc is not None
        assert serial_doc.pop("wall_seconds") > 0.0
        assert par_doc.pop("wall_seconds") > 0.0
        assert json.dumps(serial_doc, sort_keys=False) == json.dumps(
            par_doc, sort_keys=False
        )

    def test_warm_hit_across_fold_jobs(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        cold = analyze(_spec(), store=store)
        assert not cold.timings.cache_hit
        warm = analyze(_spec(), store=store, fold_jobs=4)
        assert warm.timings.cache_hit
        # a cached stage 2 never spawned fold workers
        assert warm.shard_seconds is None
        assert _blob(warm) == _blob(cold)

    def test_parallel_cold_serves_serial_warm(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        cold = analyze(_spec(), store=store, fold_jobs=3)
        assert not cold.timings.cache_hit
        warm = analyze(_spec(), store=store)
        assert warm.timings.cache_hit
        assert _blob(warm) == _blob(cold)


class TestTraceFanout:
    def test_shard_spans_under_stage2(self):
        tracer = Tracer()
        result = analyze(_spec(), fold_jobs=2, tracer=tracer)
        (root,) = tracer.roots
        (stage2,) = [c for c in root.children if c.name == "instr2_fold"]
        shards = [c for c in stage2.children if c.name == "fold.shard"]
        assert len(shards) == 2
        assert {s.tid for s in shards} == {"fold-shard-0", "fold-shard-1"}
        for span in shards:
            assert stage2.t0 <= span.t0 <= span.t1 <= stage2.t1
            assert span.args["busy_seconds"] >= 0.0
            assert span.counters["points"] > 0
        assert stage2.find("fold.finalize") is not None
        # StageTimings invariant survives the overlapping shard spans
        t = result.timings
        assert t.total == pytest.approx(root.t1 - root.t0)

    def test_parallel_trace_renders_chrome_document(self):
        tracer = Tracer()
        analyze(_spec(), fold_jobs=3, tracer=tracer)
        doc = chrome_trace_document(tracer.roots, workload="nn")
        assert validate_chrome_trace(doc) > 0
        names = {ev.get("name") for ev in doc["traceEvents"]}
        assert "fold.shard" in names


class TestSuiteSurface:
    def test_run_suite_threads_fold_jobs(self):
        (res,) = run_suite(["nn"], jobs=1, fold_jobs=2)
        assert res.ok
        assert res.fold_jobs == 2
        assert res.t_shards is not None and len(res.t_shards) == 2
        table = render_suite_table([res])
        assert " fj " in table or "fj" in table.splitlines()[0]
        assert "~" in table  # min~max shard spread rendered

    def test_serial_suite_table_unchanged(self):
        (res,) = run_suite(["nn"], jobs=1)
        assert res.fold_jobs == 1 and res.t_shards is None
        table = render_suite_table([res])
        assert "fj" not in table.splitlines()[0]
