"""Fusion / component-structure tests (Table 5 columns C, Comp.)."""

import pytest

from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, analyze
from repro.schedule import fuse_components


def make_spec(name, build_main, nwords=256):
    pb = ProgramBuilder(name)
    with pb.function("main", ["A", "B", "C"]) as f:
        build_main(f)
        f.halt()

    def state():
        mem = Memory()
        a = mem.alloc_array([float(i % 7) for i in range(nwords)])
        b = mem.alloc(nwords, init=0.0)
        c = mem.alloc(nwords, init=0.0)
        return (a, b, c), mem

    return ProgramSpec(name, pb.build(), state)


N = 12


class TestProducerConsumerLoops:
    """B[i] = A[i]; then C[i] = B[i]: fusable, and smartfuse wants it
    (the loops share data)."""

    @pytest.fixture(scope="class")
    def result(self):
        def body(f):
            with f.loop(0, N) as i:
                f.store("B", f.load("A", index=i), index=i)
            with f.loop(0, N) as i:
                f.store("C", f.load("B", index=i), index=i)

        return analyze(make_spec("prodcons", body))

    def test_two_components_before(self, result):
        fr = fuse_components(result.forest, heuristic="S")
        assert fr.components_before == 2

    def test_smartfuse_merges(self, result):
        fr = fuse_components(result.forest, heuristic="S")
        assert fr.components_after == 1

    def test_maxfuse_merges(self, result):
        fr = fuse_components(result.forest, heuristic="M")
        assert fr.components_after == 1


class TestIndependentLoops:
    """B[i] = A[i]; C[i] = A[i] + 1: no shared data -> smartfuse keeps
    them distributed, maxfuse merges."""

    @pytest.fixture(scope="class")
    def result(self):
        def body(f):
            with f.loop(0, N) as i:
                f.store("B", f.load("A", index=i), index=i)
            with f.loop(0, N) as i:
                f.store("C", f.fadd(f.load("A", index=i), 1.0), index=i)

        return analyze(make_spec("indep", body))

    def test_smartfuse_distributes(self, result):
        fr = fuse_components(result.forest, heuristic="S")
        assert fr.components_before == 2
        assert fr.components_after == 2

    def test_maxfuse_merges(self, result):
        fr = fuse_components(result.forest, heuristic="M")
        assert fr.components_after == 1


class TestFusionBlockingDep:
    """C[i] = B[N-1-i] after B[i] = A[i]: reversed consumption makes
    identity-aligned fusion illegal -> stays distributed everywhere."""

    @pytest.fixture(scope="class")
    def result(self):
        def body(f):
            with f.loop(0, N) as i:
                f.store("B", f.load("A", index=i), index=i)
            with f.loop(0, N) as i:
                rev = f.sub(N - 1, i)
                f.store("C", f.load("B", index=rev), index=i)

        return analyze(make_spec("revdep", body))

    def test_neither_heuristic_fuses(self, result):
        for h in ("S", "M"):
            fr = fuse_components(result.forest, heuristic=h)
            assert fr.components_after == 2, h


class TestTinyLoopBelowThreshold:
    """A loop with <5% of region ops is not a component."""

    @pytest.fixture(scope="class")
    def result(self):
        def body(f):
            with f.loop(0, 2) as i:      # tiny: not a component
                f.store("B", 0.0, index=i)
            with f.loop(0, 64) as i:     # hot
                with f.loop(0, 8) as j:
                    f.store(
                        "C",
                        f.load("A", index=j),
                        index=f.mod(f.add(i, j), 256),
                    )

        return analyze(make_spec("tiny", body))

    def test_component_counting(self, result):
        fr = fuse_components(result.forest, heuristic="S")
        assert fr.components_before == 1
