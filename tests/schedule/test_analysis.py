"""Schedule-analysis tests on canonical kernels.

Each kernel is built through the frontend, run through the full
profile-fold-analyze pipeline, and checked against textbook dependence
facts: which loops are parallel, which bands are permutable/tilable,
where skewing is needed, which permutations are legal.
"""

import pytest

from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, analyze
from repro.schedule import tilable_depth, permutation_legal


def make_spec(name, build_main, nwords=512):
    pb = ProgramBuilder(name)
    with pb.function("main", ["A", "B", "C"]) as f:
        build_main(f)
        f.halt()

    def state():
        mem = Memory()
        a = mem.alloc_array([float(i % 7) for i in range(nwords)])
        b = mem.alloc_array([float(i % 5) for i in range(nwords)])
        c = mem.alloc(nwords, init=0.0)
        return (a, b, c), mem

    return ProgramSpec(name, pb.build(), state)


N = 8


def leaf_nodes(result):
    return [n for n in result.forest.walk() if n.is_innermost()]


def the_leaf(result):
    leaves = [n for n in leaf_nodes(result) if n.ops_total > 10]
    assert len(leaves) == 1, f"expected one hot leaf, got {leaves}"
    return leaves[0]


def chain_of(result, leaf):
    return [result.forest.node_at(leaf.path[: k + 1]) for k in range(leaf.depth)]


class TestCopyKernel:
    """B[i][j] = A[i][j]: fully parallel, fully permutable."""

    @pytest.fixture(scope="class")
    def result(self):
        def body(f):
            with f.loop(0, N) as i:
                with f.loop(0, N) as j:
                    idx = f.add(f.mul(i, N), j)
                    v = f.load("A", index=idx)
                    f.store("B", v, index=idx)

        return analyze(make_spec("copy2d", body))

    def test_both_loops_parallel(self, result):
        leaf = the_leaf(result)
        outer, inner = chain_of(result, leaf)
        assert outer.parallel and inner.parallel

    def test_fully_permutable_band(self, result):
        leaf = the_leaf(result)
        depth, skews = tilable_depth(result.forest, leaf)
        assert depth == 2 and skews == {}

    def test_all_permutations_legal(self, result):
        leaf = the_leaf(result)
        assert permutation_legal(result.forest, leaf, (0, 1))
        assert permutation_legal(result.forest, leaf, (1, 0))

    def test_plan_suggests_parallel_and_simd(self, result):
        (plan,) = [p for p in result.plans if p.leaf.ops_total > 10]
        kinds = {s.kind for s in plan.steps}
        assert "parallel" in kinds
        assert plan.simd


class TestReduction:
    """sum += A[i]: the loop is sequential (carried register dep)."""

    @pytest.fixture(scope="class")
    def result(self):
        def body(f):
            acc = f.set(f.fresh_reg("acc"), 0.0)
            with f.loop(0, N * 4) as i:
                v = f.load("A", index=i)
                f.fadd(acc, v, into=acc)
            f.store("C", acc, index=0)

        return analyze(make_spec("reduce", body))

    def test_loop_not_parallel(self, result):
        leaf = the_leaf(result)
        assert leaf.parallel is False

    def test_band_is_trivial(self, result):
        leaf = the_leaf(result)
        depth, _ = tilable_depth(result.forest, leaf)
        assert depth == 1


class TestLayerforwardShape:
    """The backprop kernel: outer parallel, inner sequential,
    2-D permutable band (Table 3's Llayer row)."""

    @pytest.fixture(scope="class")
    def result(self):
        from repro.workloads.examples_paper import layerforward_kernel

        return analyze(layerforward_kernel(n1=7, n2=6))

    def leaf(self, result):
        leaves = [
            n
            for n in result.forest.walk()
            if n.is_innermost() and n.depth == 2
        ]
        assert len(leaves) == 1
        return leaves[0]

    def test_outer_parallel_inner_not(self, result):
        leaf = self.leaf(result)
        outer = result.forest.node_at(leaf.path[:1])
        assert outer.parallel is True     # j iterations independent
        assert leaf.parallel is False     # sum recurrence on k

    def test_permutable_band_of_two(self, result):
        leaf = self.leaf(result)
        depth, skews = tilable_depth(result.forest, leaf)
        assert depth == 2 and skews == {}

    def test_interchange_legal(self, result):
        leaf = self.leaf(result)
        assert permutation_legal(result.forest, leaf, (1, 0))


class TestSeidelStencil:
    """A[i][j] = A[i-1][j] + A[i][j-1]: no parallel loop, but the 2-D
    band is permutable, hence tilable + wavefront-parallel."""

    @pytest.fixture(scope="class")
    def result(self):
        def body(f):
            with f.loop(1, N) as i:
                with f.loop(1, N) as j:
                    up = f.load("A", index=f.add(f.mul(f.sub(i, 1), N), j))
                    left = f.load("A", index=f.add(f.mul(i, N), f.sub(j, 1)))
                    f.store("A", f.fadd(up, left), index=f.add(f.mul(i, N), j))

        return analyze(make_spec("seidel", body))

    def test_no_parallel_loop(self, result):
        leaf = the_leaf(result)
        outer, inner = chain_of(result, leaf)
        assert outer.parallel is False
        assert inner.parallel is False

    def test_tilable_band_of_two(self, result):
        leaf = the_leaf(result)
        depth, skews = tilable_depth(result.forest, leaf)
        assert depth == 2 and skews == {}


class TestJacobiInPlaceSkew:
    """for t: for i: A[i] = A[i-1] + A[i] + A[i+1] (in place).

    Distance vectors include (1, -1) [flow from A[i+1]'s producer],
    which blocks plain permutability; a skew i' = i + t legalizes the
    band -- the classic time-skewing result."""

    @pytest.fixture(scope="class")
    def result(self):
        def body(f):
            with f.loop(0, N) as t:
                with f.loop(1, N * 2) as i:
                    a = f.load("A", index=f.sub(i, 1))
                    b = f.load("A", index=i)
                    c = f.load("A", index=f.add(i, 1))
                    f.store("A", f.fadd(f.fadd(a, b), c), index=i)

        return analyze(make_spec("jacobi1d", body))

    def test_neither_loop_parallel(self, result):
        leaf = the_leaf(result)
        outer, inner = chain_of(result, leaf)
        assert outer.parallel is False
        assert inner.parallel is False

    def test_band_requires_skew(self, result):
        leaf = the_leaf(result)
        depth, skews = tilable_depth(result.forest, leaf)
        assert depth == 2
        assert skews == {1: 1}  # inner skewed once by outer

    def test_interchange_illegal(self, result):
        leaf = the_leaf(result)
        assert not permutation_legal(result.forest, leaf, (1, 0))

    def test_skew_recorded_on_node(self, result):
        leaf = the_leaf(result)
        assert leaf.skew_factor == 1


class TestColumnMajorInterchange:
    """B[j][i] traversal: interchange improves stride and is legal."""

    @pytest.fixture(scope="class")
    def result(self):
        def body(f):
            with f.loop(0, N) as i:
                with f.loop(0, N) as j:
                    # column-major access: stride N in j, stride 1 in i
                    idx = f.add(f.mul(j, N), i)
                    v = f.load("A", index=idx)
                    f.store("B", v, index=idx)

        return analyze(make_spec("colmajor", body))

    def test_interchange_suggested(self, result):
        (plan,) = [p for p in result.plans if p.leaf.ops_total > 10]
        assert plan.interchange
        assert plan.permutation == (1, 0)

    def test_stride_scores_reflect_layout(self, result):
        from repro.feedback import stride_scores

        leaf = the_leaf(result)
        scores = stride_scores(leaf)
        assert scores[0] > scores[1]  # i innermost would be stride-1
