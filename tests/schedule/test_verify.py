"""Transformation-legality verification tests.

The verifier proves (by exact emptiness of the violation sets) that a
suggested reordering preserves every folded dependence -- and, just as
importantly, *detects* illegal reorderings with a witness point.
"""

import pytest

from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, analyze
from repro.schedule import plan_nest
from repro.schedule.verify import (
    schedule_exprs,
    verify_dep,
    verify_plan,
)
from repro.poly import AffineExpr

N = 8


def make_spec(name, body, nwords=512):
    pb = ProgramBuilder(name)
    with pb.function("main", ["A", "B"]) as f:
        body(f)
        f.halt()

    def state():
        mem = Memory()
        a = mem.alloc_array([float(i % 7) for i in range(nwords)])
        b = mem.alloc(nwords, init=0.0)
        return (a, b), mem

    return ProgramSpec(name, pb.build(), state)


def hot_leaf(result):
    return max(
        (n for n in result.forest.walk() if n.is_innermost()),
        key=lambda n: n.ops_total,
    )


class TestScheduleExprs:
    def test_identity(self):
        T = schedule_exprs(2)
        assert T[0] == AffineExpr.var(0, 2)
        assert T[1] == AffineExpr.var(1, 2)

    def test_permutation(self):
        T = schedule_exprs(2, permutation=(1, 0))
        assert T[0] == AffineExpr.var(1, 2)
        assert T[1] == AffineExpr.var(0, 2)

    def test_skew(self):
        T = schedule_exprs(2, skews={1: 1})
        assert T[1] == AffineExpr((1, 1), 0)  # j + i


class TestVerifyPlan:
    @pytest.fixture(scope="class")
    def copy_result(self):
        def body(f):
            with f.loop(0, N) as i:
                with f.loop(0, N) as j:
                    idx = f.add(f.mul(i, N), j)
                    f.store("B", f.load("A", index=idx), index=idx)

        return analyze(make_spec("copy", body))

    def test_legal_interchange_verifies(self, copy_result):
        leaf = hot_leaf(copy_result)
        plan = plan_nest(copy_result.forest, leaf, [1.0, 0.5])
        res = verify_plan(copy_result.forest, plan)
        assert res.legal
        assert res.checked > 0

    @pytest.fixture(scope="class")
    def jacobi_result(self):
        # in-place 1-D Jacobi under a time loop: interchange illegal
        def body(f):
            with f.loop(0, N) as t:
                with f.loop(1, 2 * N) as i:
                    a = f.load("A", index=f.sub(i, 1))
                    c = f.load("A", index=f.add(i, 1))
                    f.store("A", f.fadd(a, c), index=i)

        return analyze(make_spec("jacobi", body))

    def test_illegal_interchange_caught(self, jacobi_result):
        from repro.schedule.transform import NestPlan

        leaf = hot_leaf(jacobi_result)
        # plain interchange *without* the time skew the analysis found
        # (verify_plan picks recorded skews up from the nodes, and the
        # skewed interchange is in fact legal -- strip them)
        saved = {id(n): n.skew_factor for n in jacobi_result.forest.walk()}
        for n in jacobi_result.forest.walk():
            n.skew_factor = None
        try:
            bad = NestPlan(leaf=leaf, permutation=(1, 0))
            res = verify_plan(jacobi_result.forest, bad)
            assert not res.legal
            assert res.violations
            v = res.violations[0]
            assert v.witness is not None  # a concrete breaking point
        finally:
            for n in jacobi_result.forest.walk():
                n.skew_factor = saved[id(n)]

    def test_time_skew_verifies(self, jacobi_result):
        """The skew the band analysis found must itself verify."""
        leaf = hot_leaf(jacobi_result)
        assert leaf.skew_factor == 1
        plan = plan_nest(jacobi_result.forest, leaf, None)
        res = verify_plan(jacobi_result.forest, plan)
        assert res.legal

    def test_identity_always_legal(self, jacobi_result):
        """The original schedule trivially preserves all dependences --
        an internal-consistency check of the folded relations."""
        from repro.schedule.transform import NestPlan

        leaf = hot_leaf(jacobi_result)
        plan = NestPlan(leaf=leaf, permutation=None)
        # neutralize the recorded skew: verify the *identity*
        for node in jacobi_result.forest.walk():
            node.skew_factor = None
        res = verify_plan(jacobi_result.forest, plan)
        assert res.legal


class TestVerifyDepDirect:
    def _dv(self, result, pred):
        return [dv for dv in result.forest.deps if pred(dv)]

    def test_reversal_of_flow_dep_detected(self):
        # A[i] = A[i-1]: reversing the loop breaks the chain
        def body(f):
            with f.loop(1, 3 * N) as i:
                v = f.load("A", index=f.sub(i, 1))
                f.store("A", v, index=i)

        result = analyze(make_spec("chain", body))
        flows = [
            dv for dv in result.forest.deps
            if dv.kind == "flow" and dv.common >= 1
        ]
        assert flows
        # reversal: T(i) = -i
        T = [AffineExpr((-1,), 0)]
        assert any(verify_dep(dv, T) is not None for dv in flows)
        # identity preserves it
        T = [AffineExpr((1,), 0)]
        assert all(verify_dep(dv, T) is None for dv in flows)

    def test_suite_plans_all_verify(self):
        """Every plan the feedback suggests on the paper's kernel must
        pass its own verification."""
        from repro.workloads.examples_paper import layerforward_kernel

        result = analyze(layerforward_kernel(n1=7, n2=6))
        for plan in result.plans:
            res = verify_plan(result.forest, plan)
            assert res.legal, plan.leaf.path
