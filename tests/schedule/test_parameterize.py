"""Domain-parameterization tests (paper section 6's scalability trick)."""


from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, analyze
from repro.schedule.parameterize import (
    Parameterizer,
    parameterize_domains,
)


class TestParameterizer:
    def test_small_constants_untouched(self):
        pz = Parameterizer(threshold=64)
        c = pz.rewrite_row((1, 0, -5), False)
        assert c.const == -5 and not c.params

    def test_large_constant_becomes_parameter(self):
        pz = Parameterizer(threshold=64)
        c = pz.rewrite_row((-1, 1023), False)   # i <= 1023
        assert c.params
        (p, mult) = c.params[0]
        assert p.value == 1023 and mult == 1
        assert c.const == 0

    def test_window_reuse(self):
        """Constants within the slack window share one parameter --
        the paper replaces x in [1024-s, 1024+s] by n + (x - 1024)."""
        pz = Parameterizer(threshold=64, slack=20)
        a = pz.rewrite_row((-1, 1024), False)
        b = pz.rewrite_row((-1, 1030), False)
        assert a.params[0][0] is b.params[0][0]   # same parameter
        assert b.const == 6                       # n + (1030 - 1024)
        c = pz.rewrite_row((-1, 2048), False)
        assert c.params[0][0] is not a.params[0][0]
        assert pz.constants_parameterized == 3

    def test_negative_constants(self):
        pz = Parameterizer(threshold=64)
        c = pz.rewrite_row((1, -100), False)   # i >= 100
        (p, mult) = c.params[0]
        assert mult == -1 and p.value == 100

    def test_pretty(self):
        pz = Parameterizer(threshold=64)
        c = pz.rewrite_row((-1, 1024), False)
        s = c.pretty(["i"])
        assert "n0" in s and ">= 0" in s


class TestOnFoldedDDG:
    def test_counts_parameters_for_large_trip_counts(self):
        pb = ProgramBuilder("big")
        with pb.function("main", ["A"]) as f:
            with f.loop(0, 300) as i:        # large constant bound
                f.store("A", 0.0, index=f.mod(i, 64))
            with f.loop(0, 310) as i:        # within one slack window? no (s=20 -> 290..310 not covering 300±20 boundary check)
                f.store("A", 1.0, index=f.mod(i, 64))
            f.halt()

        def state():
            mem = Memory()
            return (mem.alloc(64, 0.0),), mem

        result = analyze(ProgramSpec("big", pb.build(), state))
        res = parameterize_domains(result.folded, threshold=64, slack=20)
        assert res.constants_parameterized > 0
        # 299 and 309 fall in one window of slack 20 -> one parameter
        assert res.parameter_count == 1
        assert res.constants_seen >= res.constants_parameterized

    def test_small_domains_produce_no_parameters(self):
        pb = ProgramBuilder("small")
        with pb.function("main", ["A"]) as f:
            with f.loop(0, 8) as i:
                f.store("A", 0.0, index=i)
            f.halt()

        def state():
            mem = Memory()
            return (mem.alloc(8, 0.0),), mem

        result = analyze(ProgramSpec("small", pb.build(), state))
        res = parameterize_domains(result.folded, threshold=64)
        assert res.parameter_count == 0


class TestAnchorStability:
    """Sweep regression: parameter anchors must be a pure function of
    the constant *set*, not of the stream order the folder happened to
    visit statements in (merged sweep models compare parameterized
    constraints across runs)."""

    def test_seeded_anchors_are_order_independent(self):
        a = Parameterizer(threshold=64, slack=20)
        a.seed_anchors([300, 310, 2048])
        b = Parameterizer(threshold=64, slack=20)
        b.seed_anchors([2048, 310, 300, 310])
        assert [(p.name, p.value) for p in a.parameters] == [
            (p.name, p.value) for p in b.parameters
        ]

    def test_rewrites_agree_across_stream_orders(self):
        rows = [(-1, 300), (-1, 310), (-1, 2048)]

        def rewrite(order):
            pz = Parameterizer(threshold=64, slack=20)
            pz.seed_anchors(abs(r[-1]) for r in rows)
            out = {}
            for i in order:
                c = pz.rewrite_row(rows[i], False)
                (p, mult) = c.params[0]
                out[rows[i]] = (p.name, p.value, mult, c.const)
            return out

        assert rewrite([0, 1, 2]) == rewrite([2, 1, 0])

    def test_domain_parameterization_is_statement_order_independent(self):
        def build(reverse):
            pb = ProgramBuilder("order")
            with pb.function("main", ["A"]) as f:
                bounds = [2048, 300]
                if reverse:
                    bounds = list(reversed(bounds))
                for b in bounds:
                    with f.loop(0, b) as i:
                        f.store("A", 0.0, index=f.mod(i, 64))
                f.halt()

            def state():
                mem = Memory()
                return (mem.alloc(64, 0.0),), mem

            result = analyze(ProgramSpec("order", pb.build(), state))
            res = parameterize_domains(
                result.folded, threshold=64, slack=20
            )
            return sorted(
                (p.name, p.value) for p in res.parameters
            )

        assert build(False) == build(True)
