"""Sweep classification tests: exact affine laws, no approximations."""

from fractions import Fraction

from repro.sweep.classify import (
    INPUT_DEPENDENT,
    INPUT_INVARIANT,
    SHAPE_SCALING,
    classify_payloads,
    fit_affine,
    skeleton,
)


class TestSkeleton:
    def test_ints_become_holes_in_walk_order(self):
        leaves = []
        s = skeleton({"b": [1, 2], "a": 3}, leaves)
        assert leaves == [3, 1, 2]  # dict keys walked sorted
        assert s == {"a": "§", "b": ["§", "§"]}

    def test_strings_never_collide_with_holes(self):
        leaves = []
        assert skeleton("§", leaves) == "s:§"
        assert leaves == []

    def test_bools_are_structure_not_leaves(self):
        leaves = []
        assert skeleton({"exact": True}, leaves) == {"exact": True}
        assert leaves == []


class TestFitAffine:
    def test_exact_line(self):
        assert fit_affine([17, 25, 33], [8, 10, 12]) == (
            Fraction(4),
            Fraction(-15),
        )

    def test_constant_series(self):
        assert fit_affine([5, 5, 5], [8, 10, 12]) == (
            Fraction(0),
            Fraction(5),
        )

    def test_nonaffine_refused(self):
        assert fit_affine([64, 100, 144], [8, 10, 12]) is None

    def test_repeated_axis_with_diverging_value_refuted(self):
        assert fit_affine([1, 2, 3], [8, 8, 12]) is None

    def test_rational_slope(self):
        assert fit_affine([4, 5, 6], [8, 10, 12]) == (
            Fraction(1, 2),
            Fraction(0),
        )


class TestClassifyPayloads:
    AXES = {"n": [8, 10, 12]}

    def test_identical_payloads_are_invariant(self):
        p = {"domain": {"bound": 7}, "kind": "flow"}
        tag, laws = classify_payloads([p, p, p], self.AXES)
        assert tag == INPUT_INVARIANT and laws == []

    def test_affine_leaf_is_shape_scaling_with_law(self):
        runs = [{"bound": n - 1, "kind": "flow"} for n in (8, 10, 12)]
        tag, laws = classify_payloads(runs, self.AXES)
        assert tag == SHAPE_SCALING
        assert laws == [{"param": "N_n", "scale": "1", "offset": "-1"}]

    def test_absence_in_one_run_is_input_dependent(self):
        p = {"bound": 7}
        tag, _ = classify_payloads([p, None, p], self.AXES)
        assert tag == INPUT_DEPENDENT

    def test_skeleton_mismatch_is_input_dependent(self):
        tag, _ = classify_payloads(
            [{"kind": "flow"}, {"kind": "anti"}, {"kind": "flow"}],
            self.AXES,
        )
        assert tag == INPUT_DEPENDENT

    def test_nonaffine_leaf_is_input_dependent(self):
        runs = [{"bound": n * n} for n in (8, 10, 12)]
        tag, laws = classify_payloads(runs, self.AXES)
        assert tag == INPUT_DEPENDENT and laws == []

    def test_first_fitting_axis_wins_deterministically(self):
        # both axes explain the leaf; sorted axis order picks "m"
        runs = [{"bound": v} for v in (8, 10, 12)]
        axes = {"n": [8, 10, 12], "m": [8, 10, 12]}
        tag, laws = classify_payloads(runs, axes)
        assert tag == SHAPE_SCALING
        assert laws == [{"param": "N_m", "scale": "1", "offset": "0"}]
