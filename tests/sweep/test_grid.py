"""Input-grid canonicalization tests."""

import pytest

from repro.sweep.grid import (
    GridError,
    axes_of,
    canonical_points,
    complete_points,
    default_grid,
    normalize_point,
    parse_point,
    point_bindings,
)


class TestNormalize:
    def test_sorted_name_value_tuples(self):
        assert normalize_point({"rows": 20, "cols": 12}) == (
            ("cols", 12),
            ("rows", 20),
        )

    def test_values_coerced_to_int(self):
        point = normalize_point({"n": "16"})
        assert point == (("n", 16),)
        assert isinstance(point[0][1], int)

    def test_bool_rejected(self):
        with pytest.raises(GridError):
            normalize_point({"n": True})

    def test_roundtrip_bindings(self):
        bindings = {"a": 1, "b": 2}
        assert point_bindings(normalize_point(bindings)) == bindings


class TestCanonicalPoints:
    def test_dedup_and_sort(self):
        pts = canonical_points(
            [{"n": 12}, {"n": 8}, {"n": 12}, {"n": 10}]
        )
        assert pts == [(("n", 8),), (("n", 10),), (("n", 12),)]

    def test_pure_function_of_the_set(self):
        a = canonical_points([{"n": 8}, {"n": 12}])
        b = canonical_points([{"n": 12}, {"n": 8}, {"n": 8}])
        assert a == b


class TestParsePoint:
    def test_parses_comma_separated_bindings(self):
        assert parse_point("rows=20,cols=12") == {"rows": 20, "cols": 12}

    def test_rejects_garbage(self):
        with pytest.raises(GridError):
            parse_point("rows")
        with pytest.raises(GridError):
            parse_point("rows=big")


class TestDefaultGrid:
    def test_one_axis_at_a_time(self):
        # pathfinder declares rows in (12, 20, 28) and cols in (8, 12, 16)
        pts = default_grid("pathfinder")
        assert pts == canonical_points([point_bindings(p) for p in pts])
        # every point is complete (both params bound)
        for p in pts:
            assert {name for name, _ in p} == {"rows", "cols"}
        # the all-defaults point appears once, plus off-default points
        # along each axis separately
        defaults = normalize_point({"rows": 20, "cols": 12})
        assert defaults in pts
        varying_both = [
            p
            for p in pts
            if point_bindings(p)["rows"] != 20
            and point_bindings(p)["cols"] != 12
        ]
        assert varying_both == []

    def test_paramless_workload_has_no_grid(self):
        with pytest.raises(GridError):
            default_grid("mm")


class TestCompletePoints:
    def test_fills_unbound_params_from_defaults(self):
        pts = complete_points("pathfinder", [{"rows": 28}])
        assert pts == [normalize_point({"rows": 28, "cols": 12})]

    def test_rejects_unknown_param(self):
        with pytest.raises(GridError):
            complete_points("pathfinder", [{"depth": 3}])

    def test_canonicalizes(self):
        pts = complete_points(
            "pathfinder", [{"rows": 28}, {"rows": 12}, {"rows": 28}]
        )
        assert [point_bindings(p)["rows"] for p in pts] == [12, 28]


class TestAxes:
    def test_only_varying_names(self):
        pts = canonical_points(
            [{"rows": 12, "cols": 8}, {"rows": 20, "cols": 8}]
        )
        assert axes_of(pts) == ["rows"]
