"""Merge-layer tests: identity alignment, tamper demotions, verdicts.

These run the real pipeline on a tiny parametric program (milliseconds
per point) so the profiles carry genuine folded payloads, then tamper
with copies at the merge boundary -- the acceptance criterion is that
one divergent run must demote the sweep-wide claim.
"""

import copy

from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, analyze
from repro.sweep.classify import INPUT_DEPENDENT
from repro.sweep.grid import normalize_point
from repro.sweep.merge import merge_profiles, profile_of, stmt_loop_path
from repro.sweep.verdict import ALL_RUNS, REFUSED, SINGLE_RUN


def parallel_spec(n: int) -> ProgramSpec:
    """A[i] += 1 over i in [0, n): one parallel loop."""
    pb = ProgramBuilder("toy")
    with pb.function("main", ["A"]) as f:
        with f.loop(0, n) as i:
            v = f.load("A", index=i)
            f.store("A", f.add(v, 1), index=i)
        f.halt()
    program = pb.build()

    def state():
        mem = Memory()
        return (mem.alloc(max(n, 1), 0),), mem

    return ProgramSpec("toy", program, state)


def profiles_for(ns):
    out = []
    for n in ns:
        result = analyze(parallel_spec(n))
        out.append(
            profile_of(result, normalize_point({"n": n}), f"k-{n}")
        )
    return out


class TestMerge:
    def test_every_entity_is_classified(self):
        model = merge_profiles("toy", profiles_for([8, 10, 12]))
        tags = {
            "input-invariant", "shape-scaling", "input-dependent",
        }
        for entity in list(model.statements.values()) + list(
            model.deps.values()
        ):
            assert entity.classification in tags
            assert entity.present == [True, True, True]

    def test_trip_count_scales_with_the_axis(self):
        model = merge_profiles("toy", profiles_for([8, 10, 12]))
        scaling = [
            e
            for e in model.statements.values()
            if e.classification == "shape-scaling"
        ]
        assert scaling, "loop-bound constants must scale with n"
        laws = {law["param"] for e in scaling for law in e.laws}
        assert laws == {"N_n"}

    def test_identical_runs_are_invariant_with_no_axes(self):
        model = merge_profiles("toy", profiles_for([10, 10]))
        assert model.axes == []
        for e in model.deps.values():
            assert e.classification == "input-invariant"

    def test_loop_verdict_is_all_runs_only_when_invariant(self):
        model = merge_profiles("toy", profiles_for([8, 10, 12]))
        loops = [r for r in model.verdicts if r["depth"] >= 1]
        assert loops
        for row in loops:
            assert row["parallel"] is True
            # trip counts scale with n, so the claim is parameterized,
            # never the (stronger) all-runs
            assert row["confidence"] == "parameterized"

    def test_same_input_twice_reaches_all_runs(self):
        model = merge_profiles("toy", profiles_for([10, 10]))
        loops = [r for r in model.verdicts if r["depth"] >= 1]
        assert loops and all(
            r["confidence"] == ALL_RUNS for r in loops
        )


class TestTamper:
    """One divergent run must demote the sweep-wide claim."""

    def test_one_non_parallel_run_refuses_the_claim(self):
        profiles = profiles_for([8, 10, 12])
        tampered = copy.deepcopy(profiles)
        for info in tampered[1].nests.values():
            info["parallel"] = False
            info["parallel_reduction"] = False
        model = merge_profiles("toy", tampered)
        loops = [r for r in model.verdicts if r["depth"] >= 1]
        assert loops and all(
            r["confidence"] == REFUSED for r in loops
        )
        assert all(r["parallel"] is False for r in loops)

    def test_off_axis_payload_perturbation_demotes_to_single_run(self):
        profiles = profiles_for([8, 10, 12])
        tampered = copy.deepcopy(profiles)
        # perturb one dependence's relation in the middle run only:
        # no affine law in n explains {0, 7, 0}
        ident = sorted(tampered[1].deps)[0]
        tampered[1].deps[ident]["src_depth"] = 7
        model = merge_profiles("toy", tampered)
        assert model.deps[ident].classification == INPUT_DEPENDENT
        path = stmt_loop_path(ident[0])
        demoted = [
            r
            for r in model.verdicts
            if tuple(tuple(e) for e in r["path"]) == path
        ]
        assert demoted and demoted[0]["confidence"] == SINGLE_RUN

    def test_entity_absent_in_one_run_demotes_to_single_run(self):
        profiles = profiles_for([8, 10, 12])
        tampered = copy.deepcopy(profiles)
        ident = sorted(tampered[1].stmts)[0]
        del tampered[1].stmts[ident]
        model = merge_profiles("toy", tampered)
        assert (
            model.statements[ident].classification == INPUT_DEPENDENT
        )
        assert model.statements[ident].present == [True, False, True]

    def test_merge_requires_canonical_point_order(self):
        profiles = profiles_for([8, 10, 12])
        import pytest

        with pytest.raises(ValueError):
            merge_profiles("toy", list(reversed(profiles)))
