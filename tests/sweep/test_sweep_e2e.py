"""Sweep driver determinism and CLI surface tests (satellite 3).

The ``swp-`` artifact must be a pure function of the point *set* and
the folded profiles: shuffled submission order, ``--fold-jobs``, and
engine choice must all leave the payload bytes (and every confidence
column) unchanged.
"""

import json

import pytest

from repro.cli import main
from repro.feedback.jsonout import render_json
from repro.sweep import SweepError, run_sweep, sweep_document

POINTS = [{"n": 8}, {"n": 10}, {"n": 12}]


def confidences(payload: dict):
    return [
        (row["nest"], row["depth"], row["confidence"])
        for row in payload["verdicts"]
    ]


@pytest.fixture(scope="module")
def baseline():
    return run_sweep("nw", POINTS, jobs=1)


class TestDeterminism:
    def test_shuffled_point_order_is_byte_identical(self, baseline):
        shuffled = run_sweep(
            "nw", [POINTS[2], POINTS[0], POINTS[1]], jobs=1
        )
        assert shuffled.key == baseline.key
        assert render_json(shuffled.payload) == render_json(
            baseline.payload
        )
        assert confidences(shuffled.payload) == confidences(
            baseline.payload
        )

    def test_fold_jobs_is_byte_identical(self, baseline):
        folded = run_sweep("nw", POINTS, jobs=1, fold_jobs=2)
        assert folded.key == baseline.key
        assert render_json(folded.payload) == render_json(
            baseline.payload
        )

    def test_reference_engine_payload_is_byte_identical(self, baseline):
        ref = run_sweep("nw", POINTS, jobs=1, engine="reference")
        # the swp- *key* binds the engine (it derives from stage-2
        # artifact keys); the model payload must not
        assert ref.key != baseline.key
        assert render_json(ref.payload) == render_json(
            baseline.payload
        )
        assert confidences(ref.payload) == confidences(
            baseline.payload
        )

    def test_duplicate_points_collapse(self, baseline):
        doubled = run_sweep("nw", POINTS + [{"n": 10}], jobs=1)
        assert doubled.key == baseline.key
        assert render_json(doubled.payload) == render_json(
            baseline.payload
        )


class TestDriver:
    def test_every_dep_is_classified(self, baseline):
        counts = baseline.model.classification_counts("deps")
        assert sum(counts.values()) == len(baseline.model.deps)
        assert set(counts) <= {
            "input-invariant", "shape-scaling", "input-dependent",
        }

    def test_warm_sweep_hits_the_store(self, tmp_path, baseline):
        cold = run_sweep(
            "nw", POINTS, jobs=1, cache_dir=str(tmp_path)
        )
        assert cold.stored is True
        warm = run_sweep(
            "nw", POINTS, jobs=1, cache_dir=str(tmp_path)
        )
        assert all(r.cache_hit for r in warm.runs)
        assert warm.stored is False  # swp- artifact already present
        assert render_json(warm.payload) == render_json(cold.payload)
        assert render_json(cold.payload) == render_json(
            baseline.payload
        )

    def test_unknown_workload_raises(self):
        with pytest.raises(SweepError):
            run_sweep("no_such_workload", POINTS, jobs=1)

    def test_default_grid_requires_declared_sweeps(self):
        from repro.sweep.grid import GridError

        with pytest.raises(GridError):
            run_sweep("mm", None, jobs=1)


class TestCli:
    def test_sweep_json_matches_driver_document(
        self, baseline, capsys
    ):
        rc = main(
            [
                "sweep", "nw",
                "--point", "n=8",
                "--point", "n=10",
                "--point", "n=12",
                "-j", "1",
                "--format", "json",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out == render_json(sweep_document(baseline))
        doc = json.loads(out)
        assert doc["kind"] == "sweep"
        assert doc["key"].startswith("swp-")

    def test_sweep_text_has_confidence_column(self, capsys):
        rc = main(
            ["sweep", "nw", "--point", "n=8", "--point", "n=10",
             "-j", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "confidence" in out
        assert "nw" in out

    def test_bad_point_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "nw", "--point", "bogus"])
