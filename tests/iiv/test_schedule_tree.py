"""Dynamic schedule tree and CCT tests (paper Fig. 5 comparison)."""

from repro.iiv import CallingContextTree, DynamicScheduleTree
from repro.isa import ProgramBuilder, run_program


class TestDynamicScheduleTree:
    def test_record_and_weights(self):
        t = DynamicScheduleTree()
        # two instances of the same loop context merge into one path
        t.record_context((("M.M0", "A:L1"), ("A.A1",)), ninstr=5)
        t.record_context((("M.M0", "A:L1"), ("A.A1",)), ninstr=7)
        assert t.node_count() == 3  # M.M0, A:L1, A.A1
        leaf = t.root.children["M.M0"].children["A:L1"].children["A.A1"]
        assert leaf.weight == 12
        assert leaf.self_weight == 12
        assert leaf.visits == 2

    def test_loop_flag_marks_loop_elements(self):
        t = DynamicScheduleTree()
        t.record_context((("M.M0", "A:L1"), ("A.A1",)), 1)
        assert t.root.children["M.M0"].children["A:L1"].is_loop
        assert not t.root.children["M.M0"].is_loop

    def test_sibling_contexts_branch(self):
        t = DynamicScheduleTree()
        t.record_context((("M.M0", "A:L1"), ("A.A1",)), 1)
        t.record_context((("M.M0", "A:L1"), ("A.A2",)), 1)
        lnode = t.root.children["M.M0"].children["A:L1"]
        assert set(lnode.children) == {"A.A1", "A.A2"}
        assert lnode.weight == 2

    def test_render_text(self):
        t = DynamicScheduleTree()
        t.record_context((("M.M0",),), 3)
        out = t.render_text()
        assert "M.M0" in out and "weight=3" in out

    def test_frames_paths(self):
        t = DynamicScheduleTree()
        t.record_context((("a", "b"), ("c",)), 1)
        paths = [p for p, _ in t.frames()]
        assert ("a",) in paths and ("a", "b", "c") in paths


def recursive_program(depth):
    pb = ProgramBuilder("rec")
    with pb.function("main", []) as f:
        f.call("R", [0])
        f.halt()
    with pb.function("R", ["n"]) as f:
        f.add("n", 1)
        with f.if_then("lt", "n", depth - 1):
            f.call("R", [f.add("n", 1)])
        f.ret()
    return pb.build()


class TestCCT:
    def test_cct_depth_grows_with_recursion(self):
        """The Fig. 5 point: CCT paths grow with recursion depth."""
        shallow = CallingContextTree()
        run_program(recursive_program(2), observers=[shallow])
        deep = CallingContextTree()
        run_program(recursive_program(8), observers=[deep])
        assert deep.depth() == shallow.depth() + 6

    def test_call_sites_distinguish_contexts(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            f.call("leaf", [])
            f.call("leaf", [])
            f.halt()
        with pb.function("leaf", []) as f:
            f.add(1, 1)
            f.ret()
        cct = CallingContextTree()
        run_program(pb.build(), observers=[cct])
        main_node = next(iter(cct.root.children.values()))
        # two distinct call sites -> two distinct CCT children
        assert len(main_node.children) == 2
        for child in main_node.children.values():
            assert child.calls == 1
            assert child.instrs == 1

    def test_repeated_calls_same_site_merge(self):
        pb = ProgramBuilder("t")
        with pb.function("main", []) as f:
            with f.loop(0, 4) as i:
                f.call("leaf", [])
            f.halt()
        with pb.function("leaf", []) as f:
            f.add(1, 1)
            f.ret()
        cct = CallingContextTree()
        run_program(pb.build(), observers=[cct])
        main_node = next(iter(cct.root.children.values()))
        assert len(main_node.children) == 1
        leaf = next(iter(main_node.children.values()))
        assert leaf.calls == 4
        assert leaf.instrs == 4

    def test_render_text(self):
        cct = CallingContextTree()
        run_program(recursive_program(3), observers=[cct])
        out = cct.render_text()
        assert "R" in out and "calls=1" in out


class TestCollapsedStacks:
    def test_format(self):
        t = DynamicScheduleTree()
        t.record_context((("M.M0", "A:L1"), ("A.A1",)), 5)
        t.record_context((("M.M0",),), 2)
        out = t.to_collapsed()
        lines = sorted(out.splitlines())
        assert lines == ["M.M0 2", "M.M0;A:L1;A.A1 5"]

    def test_weights_sum_to_total(self):
        from repro.isa import ProgramBuilder, run_program

        t = DynamicScheduleTree()
        t.record_context((("a",), ("b",)), 3)
        t.record_context((("a",), ("c",)), 4)
        total = sum(int(l.rsplit(" ", 1)[1]) for l in t.to_collapsed().splitlines())
        assert total == t.root.weight == 7
