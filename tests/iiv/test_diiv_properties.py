"""Property tests: dynamic-IIV invariants over randomized programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import (
    ControlStructureBuilder,
    LoopEventGenerator,
    build_loop_forest,
    build_recursive_component_set,
)
from repro.iiv import DynamicIIV
from repro.isa import ProgramBuilder, run_program


@st.composite
def nest_shape(draw):
    depth = draw(st.integers(1, 3))
    bounds = [draw(st.integers(1, 4)) for _ in range(depth)]
    call_leaf = draw(st.booleans())
    second_nest = draw(st.booleans())
    recursion = draw(st.integers(0, 3))
    return bounds, call_leaf, second_nest, recursion


def build_program(shape):
    bounds, call_leaf, second_nest, recursion = shape
    pb = ProgramBuilder("r")
    with pb.function("main", []) as f:
        ctxs = []
        for b in bounds:
            c = f.loop(0, b)
            c.__enter__()
            ctxs.append(c)
        if call_leaf:
            f.call("leaf", [])
        else:
            f.add(1, 1)
        for c in reversed(ctxs):
            c.__exit__(None, None, None)
        if second_nest:
            with f.loop(0, 2) as i:
                f.add(i, 1)
        if recursion:
            f.call("rec", [0])
        f.halt()
    with pb.function("leaf", []) as f:
        with f.loop(0, 2) as i:
            f.add(i, 1)
        f.ret()
    with pb.function("rec", ["n"]) as f:
        f.add("n", 1)
        with f.if_then("lt", "n", max(recursion - 1, 0)):
            f.call("rec", [f.add("n", 1)])
        f.ret()
    return pb.build()


@given(nest_shape())
@settings(max_examples=40, deadline=None)
def test_iiv_invariants_hold_throughout(shape):
    """At every point of any execution:

    * the IIV's coordinate count equals its dimension count;
    * all induction values are non-negative;
    * the loop stack unwinds completely by program end;
    * context stacks never go empty mid-run.
    """
    program = build_program(shape)
    csb = ControlStructureBuilder(record_trace=True)
    run_program(program, observers=[csb])
    forests = {
        f: build_loop_forest(f, c.nodes, c.edges, c.entry)
        for f, c in csb.cfgs.items()
    }
    rcs = build_recursive_component_set(
        csb.callgraph.nodes, csb.callgraph.edges, csb.callgraph.root
    )
    gen = LoopEventGenerator(forests, rcs)
    diiv = DynamicIIV()
    max_depth = 0
    for ev in csb.trace:
        for le in gen.process(ev):
            diiv.apply(le)
            coords = diiv.coords()
            assert len(coords) == diiv.depth
            assert all(c >= 0 for c in coords)
            assert all(len(ctx) >= 0 for ctx in diiv.context())
        max_depth = max(max_depth, diiv.depth)
    assert gen.in_loops == []
    # depth bounded by static nesting + one recursion dimension
    bounds, call_leaf, second_nest, recursion = shape
    static_bound = len(bounds) + (1 if call_leaf else 0) + 1 + (
        1 if recursion else 0
    )
    assert max_depth <= static_bound


@given(st.integers(2, 10))
@settings(max_examples=10, deadline=None)
def test_recursion_depth_never_grows_iiv(depth):
    """The central Fig. 3 property, checked across depths."""
    pb = ProgramBuilder("r")
    with pb.function("main", []) as f:
        f.call("rec", [0])
        f.halt()
    with pb.function("rec", ["n"]) as f:
        f.add("n", 1)
        with f.if_then("lt", "n", depth - 1):
            f.call("rec", [f.add("n", 1)])
        f.ret()
    program = pb.build()
    csb = ControlStructureBuilder(record_trace=True)
    run_program(program, observers=[csb])
    forests = {
        f: build_loop_forest(f, c.nodes, c.edges, c.entry)
        for f, c in csb.cfgs.items()
    }
    rcs = build_recursive_component_set(
        csb.callgraph.nodes, csb.callgraph.edges, csb.callgraph.root
    )
    gen = LoopEventGenerator(forests, rcs)
    diiv = DynamicIIV()
    max_dims = 0
    max_ctx = 0
    for ev in csb.trace:
        for le in gen.process(ev):
            diiv.apply(le)
        max_dims = max(max_dims, diiv.depth)
        max_ctx = max(max_ctx, max(len(c) for c in diiv.context()))
    assert max_dims == 1           # one recursive-loop dimension
    assert max_ctx <= 3            # bounded context, any depth
