"""Kelly's mapping tests reproducing the paper's Fig. 4."""

from repro.iiv import ScheduleNode, kelly_mapping, kelly_vector, schedule_precedes


def fused_tree():
    """Fig. 4 left: one nest containing S and T."""
    root = ScheduleNode.root()
    li = root.loop("L_i", "i")
    lj = li.loop("L_j", "j")
    lj.stmt("S")
    lj.stmt("T")
    return root


def fissioned_tree():
    """Fig. 4 right: two sibling nests, S in the first, T in the second."""
    root = ScheduleNode.root()
    li = root.loop("L_i", "i")
    lj = li.loop("L_j", "j")
    lj.stmt("S")
    li2 = root.loop("L_i'", "i'")
    lj2 = li2.loop("L_j'", "j'")
    lj2.stmt("T")
    return root


class TestFig4:
    def test_fused_mappings(self):
        root = fused_tree()
        s, t = root.find("S"), root.find("T")
        assert kelly_mapping(s) == ["L_i", "i", "L_j", "j", "S"]
        assert kelly_mapping(t) == ["L_i", "i", "L_j", "j", "T"]
        assert kelly_vector(s) == [0, "i", 0, "j", 0]
        assert kelly_vector(t) == [0, "i", 0, "j", 1]

    def test_fissioned_mappings(self):
        root = fissioned_tree()
        s, t = root.find("S"), root.find("T")
        assert kelly_vector(s) == [0, "i", 0, "j", 0]
        assert kelly_vector(t) == [1, "i'", 0, "j'", 0]

    def test_lexicographic_order_is_schedule(self):
        # fused: S(0,0) < T(0,0) < S(0,1); fissioned: all S before all T
        assert schedule_precedes([0, 0, 0, 0, 0], [0, 0, 0, 0, 1])
        assert schedule_precedes([0, 0, 0, 0, 1], [0, 0, 0, 1, 0])
        assert schedule_precedes([0, 5, 0, 5, 0], [1, 0, 0, 0, 0])
        assert not schedule_precedes([1, 0, 0, 0, 0], [0, 9, 0, 9, 0])

    def test_static_indices_assigned_in_order(self):
        root = fissioned_tree()
        assert [c.static_index for c in root.children] == [0, 1]

    def test_leaves_and_prefix_order(self):
        root = fused_tree()
        assert [l.name for l in root.leaves()] == ["S", "T"]
        assert schedule_precedes([0, 3], [0, 3, 0, 0, 0])
