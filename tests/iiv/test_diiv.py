"""Step-by-step reproduction of the paper's Fig. 3 IIV traces.

We hand-feed the control-event streams of Example 1 (interprocedural
loop nest) and Example 2 (recursion) through the loop-event generator
and Algorithm 3, checking the dynamic IIV after every step against the
values printed in Fig. 3d / Fig. 3i (modulo our qualified block and
loop naming: the paper's ``A1`` is our ``A.A1``, its ``L1`` is the
generated loop id).
"""

import pytest

from repro.cfg import (
    LoopEventGenerator,
    build_loop_forest,
    build_recursive_component_set,
)
from repro.iiv import DynamicIIV
from repro.isa.events import CallEvent, JumpEvent, ReturnEvent


def make_gen_ex1():
    forests = {
        "M": build_loop_forest("M", {"M0", "M1"}, {("M0", "M1")}, "M0"),
        "A": build_loop_forest(
            "A",
            {"A0", "A1", "A2", "A3"},
            {("A0", "A1"), ("A1", "A2"), ("A2", "A1"), ("A1", "A3")},
            "A0",
        ),
        "B": build_loop_forest(
            "B",
            {"B0", "B1", "B2", "B3"},
            {("B0", "B1"), ("B1", "B2"), ("B2", "B1"), ("B1", "B3")},
            "B0",
        ),
    }
    rcs = build_recursive_component_set(
        {"M", "A", "B"}, {("M", "A"), ("A", "B")}, "M"
    )
    return LoopEventGenerator(forests, rcs), forests


class TestExample1Trace:
    """Fig. 3d, adapted to our naming; ``LA``/``LB`` are the loop ids."""

    def run_trace(self):
        gen, forests = make_gen_ex1()
        LA = forests["A"].all_loops[0].id
        LB = forests["B"].all_loops[0].id
        diiv = DynamicIIV()
        steps = []
        events = [
            JumpEvent("M", None, "M0"),
            CallEvent("M", "M0", "A", "A0", 1),
            JumpEvent("A", "A0", "A1"),
            CallEvent("A", "A1", "B", "B0", 2),
            JumpEvent("B", "B0", "B1"),
            JumpEvent("B", "B1", "B2"),
            JumpEvent("B", "B2", "B1"),
            JumpEvent("B", "B1", "B3"),
            ReturnEvent("B", "A", "A2", 2),
            JumpEvent("A", "A2", "A1"),
        ]
        for ev in events:
            for le in gen.process(ev):
                diiv.apply(le)
            steps.append(diiv.pretty())
        return steps, LA, LB

    def test_full_trace(self):
        steps, LA, LB = self.run_trace()
        assert steps == [
            "(M.M0)",                                   # 1: N(M0)
            "(M.M0/A.A0)",                              # 2: C(A0)
            f"(M.M0/{LA}, 0, A.A1)",                    # 3: E(LA, A1)
            f"(M.M0/{LA}, 0, A.A1/B.B0)",               # 4: C(B0)
            f"(M.M0/{LA}, 0, A.A1/{LB}, 0, B.B1)",      # 5: E(LB, B1)
            f"(M.M0/{LA}, 0, A.A1/{LB}, 0, B.B2)",      # 6: N(B2)
            f"(M.M0/{LA}, 0, A.A1/{LB}, 1, B.B1)",      # 7: I(LB, B1)
            f"(M.M0/{LA}, 0, A.A1/B.B3)",               # 8: X(LB, B3)
            f"(M.M0/{LA}, 0, A.A2)",                    # 9: R(A2)
            f"(M.M0/{LA}, 1, A.A1)",                    # 10: I(LA, A1)
        ]

    def test_depth_inside_b_loop_is_two(self):
        steps, _, _ = self.run_trace()
        # the 2-D interprocedural nest is visible: two IVs at step 5
        assert steps[4].count(", ") == 4


def make_gen_ex2():
    forests = {
        "M": build_loop_forest(
            "M", {"M0", "M1", "M2"}, {("M0", "M1"), ("M1", "M2")}, "M0"
        ),
        "D": build_loop_forest("D", {"D0", "D1"}, {("D0", "D1")}, "D0"),
        "C": build_loop_forest("C", {"C0"}, set(), "C0"),
        "B": build_loop_forest(
            "B",
            {"B0", "B1", "B2"},
            {("B0", "B1"), ("B1", "B2")},
            "B0",
        ),
    }
    rcs = build_recursive_component_set(
        {"M", "D", "C", "B"},
        {("M", "D"), ("M", "B"), ("D", "C"), ("B", "C"), ("B", "B")},
        "M",
    )
    return LoopEventGenerator(forests, rcs), rcs


class TestExample2Trace:
    """Fig. 3i: recursion folded into one loop dimension."""

    def run_trace(self):
        gen, rcs = make_gen_ex2()
        RC = rcs.components[0].id
        diiv = DynamicIIV()
        steps = []
        events = [
            JumpEvent("M", None, "M0"),           # 1
            CallEvent("M", "M0", "D", "D0", 1),   # 2
            CallEvent("D", "D0", "C", "C0", 2),   # 3
            ReturnEvent("C", "D", "D1", 2),       # 4a
            ReturnEvent("D", "M", "M1", 1),       # 4b  (the paper's R^2)
            CallEvent("M", "M1", "B", "B0", 3),   # 5: Ec
            CallEvent("B", "B0", "C", "C0", 4),   # 6
            ReturnEvent("C", "B", "B1", 4),       # 7
            CallEvent("B", "B1", "B", "B0", 5),   # 8: Ic (depth 2)
            CallEvent("B", "B0", "C", "C0", 6),   # 9
            ReturnEvent("C", "B", "B1", 6),       # 10
            CallEvent("B", "B1", "B", "B0", 7),   # 11: Ic (depth 3)
            CallEvent("B", "B0", "C", "C0", 8),   # 12
            ReturnEvent("C", "B", "B1", 8),       # 13
            JumpEvent("B", "B1", "B2"),           # 14: leaf stops recursing
            ReturnEvent("B", "B", "B2", 7),       # 15: Ir
            ReturnEvent("B", "B", "B2", 5),       # 16: Ir
            ReturnEvent("B", "M", "M2", 3),       # 17: Xr
        ]
        for ev in events:
            for le in gen.process(ev):
                diiv.apply(le)
            steps.append(diiv.pretty())
        return steps, RC

    def test_full_trace(self):
        steps, RC = self.run_trace()
        assert steps == [
            "(M.M0)",
            "(M.M0/D.D0)",
            "(M.M0/D.D0/C.C0)",
            "(M.M0/D.D1)",
            "(M.M1)",
            f"(M.M1/{RC}, 0, B.B0)",
            f"(M.M1/{RC}, 0, B.B0/C.C0)",
            f"(M.M1/{RC}, 0, B.B1)",
            f"(M.M1/{RC}, 1, B.B0)",       # recursion: iv++ not depth++
            f"(M.M1/{RC}, 1, B.B0/C.C0)",
            f"(M.M1/{RC}, 1, B.B1)",
            f"(M.M1/{RC}, 2, B.B0)",
            f"(M.M1/{RC}, 2, B.B0/C.C0)",
            f"(M.M1/{RC}, 2, B.B1)",
            f"(M.M1/{RC}, 2, B.B2)",
            f"(M.M1/{RC}, 3, B.B2)",       # Ir: return also iterates
            f"(M.M1/{RC}, 4, B.B2)",
            "(M.M2)",                      # Xr unwinds to plain context
        ]

    def test_c_instances_indexed_by_recursion_depth(self):
        """Fig. 3k: the folded domain of C0 is {M1 L1 B0 C0 (i) : 0<=i<=2}."""
        steps, RC = self.run_trace()
        c_steps = [s for s in steps if s.endswith("C.C0)") and RC in s]
        ivs = [int(s.split(", ")[1]) for s in c_steps]
        assert ivs == [0, 1, 2]

    def test_vector_length_bounded(self):
        """The IIV does not grow with recursion depth (the CCT does)."""
        steps, _ = self.run_trace()
        max_commas = max(s.count(", ") for s in steps)
        assert max_commas == 2  # one loop dimension, ever


class TestDIIVBasics:
    def test_initial_state(self):
        d = DynamicIIV()
        assert d.depth == 0
        assert d.coords() == ()
        assert d.pretty() == "()"

    def test_pop_root_dim_rejected(self):
        from repro.cfg.loop_events import LoopEvent

        d = DynamicIIV()
        with pytest.raises(ValueError):
            d.apply(LoopEvent("X", "f.b", None))

    def test_iteration_on_root_rejected(self):
        from repro.cfg.loop_events import LoopEvent

        d = DynamicIIV()
        with pytest.raises(ValueError):
            d.apply(LoopEvent("I", "f.b", None))

    def test_context_and_coords_views(self):
        from repro.cfg.loop_events import LoopEvent
        from repro.cfg.looptree import Loop

        lp = Loop(
            id="f:L1", func="f", header="h", region=frozenset({"h", "b"}),
            entries=frozenset({"h"}), back_edges=frozenset(),
        )
        d = DynamicIIV()
        d.apply(LoopEvent("N", "f.e", None))
        d.apply(LoopEvent("E", "f.h", lp))
        d.apply(LoopEvent("I", "f.h", lp))
        assert d.coords() == (1,)
        assert d.context() == (("f:L1",), ("f.h",))
        assert d.depth == 1
