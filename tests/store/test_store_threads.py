"""Thread-safety of one shared ArtifactStore handle.

The service's worker pool shares a single store instance across
threads; these tests hammer that handle from many threads and assert
no torn payloads, no lost counter increments, and sane LRU eviction
under concurrent touches.
"""

import threading

from repro.store import ArtifactStore


def _payload(tag, size=50):
    return {"tag": tag, "data": list(range(size))}


class TestConcurrentAccess:
    def test_same_key_put_get_hammer(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = "cp-" + "a" * 64
        store.put(key, _payload("seed"))
        n_threads, n_iters = 8, 40
        torn = []

        def _worker(tid):
            for i in range(n_iters):
                store.put(key, _payload(f"{tid}:{i}"))
                got = store.get(key)
                # last-write-wins: any complete payload is fine,
                # a partial/corrupt one is not
                if got is not None and (
                    set(got) != {"tag", "data"}
                    or got["data"] != list(range(50))
                ):
                    torn.append(got)

        threads = [
            threading.Thread(target=_worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not torn
        final = store.get(key)
        assert final is not None and final["data"] == list(range(50))

    def test_distinct_keys_all_land(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        n_threads, per_thread = 8, 25

        def _worker(tid):
            for i in range(per_thread):
                store.put(f"cp-{tid:02d}{i:03d}" + "x" * 59, _payload(i))

        threads = [
            threading.Thread(target=_worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store.entries()) == n_threads * per_thread
        assert store.stats.puts == n_threads * per_thread

    def test_counter_increments_not_lost(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = "cp-" + "b" * 64
        store.put(key, _payload("x"))
        n_threads, n_gets = 8, 50

        def _reader():
            for _ in range(n_gets):
                store.get(key)
                store.get("cp-missing" + "c" * 54)

        threads = [threading.Thread(target=_reader) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.stats.hits == n_threads * n_gets
        assert store.stats.misses == n_threads * n_gets

    def test_concurrent_eviction_and_puts_stay_within_cap(self, tmp_path):
        cap = 40_000
        store = ArtifactStore(str(tmp_path), max_bytes=cap)

        def _writer(tid):
            for i in range(30):
                store.put(
                    f"cp-ev{tid}{i:03d}" + "y" * 58, _payload(i, size=100)
                )
                store.evict()

        threads = [
            threading.Thread(target=_writer, args=(t,)) for t in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store.evict()
        assert store.total_bytes() <= cap
        assert store.stats.evictions > 0
        # whatever survived eviction must still decode
        import os

        for path, _, _ in store.entries():
            key = os.path.basename(path)[: -len(".json.gz")]
            assert store.get(key) is not None
