"""Canonical fingerprinting: stability and sensitivity.

The cache is only sound if the fingerprint is *stable* for equal
inputs (same workload factory -> same digest, across constructions)
and *sensitive* to every semantic detail (any program or state change
-> different digest).
"""

import dataclasses

import pytest

from repro.isa import fingerprint_program, fingerprint_state
from repro.isa.program import Memory
from repro.workloads import all_workloads

WORKLOADS = sorted(all_workloads())


@pytest.mark.parametrize("name", WORKLOADS)
def test_program_fingerprint_stable(name):
    a = all_workloads()[name]()
    b = all_workloads()[name]()
    assert a.program is not b.program or a.program is b.program
    assert fingerprint_program(a.program) == fingerprint_program(b.program)


@pytest.mark.parametrize("name", WORKLOADS)
def test_state_fingerprint_stable(name):
    a = all_workloads()[name]()
    b = all_workloads()[name]()
    assert fingerprint_state(*a.make_state()) == fingerprint_state(
        *b.make_state()
    )


def test_distinct_programs_distinct_digests():
    digests = {
        name: fingerprint_program(all_workloads()[name]().program)
        for name in WORKLOADS
    }
    # "mm" is deliberately an alias of pb_gemm (the tracing demo):
    # same program, same digest, shared cache artifacts
    if "mm" in digests and "pb_gemm" in digests:
        assert digests.pop("mm") == digests["pb_gemm"]
    assert len(set(digests.values())) == len(digests)


def _first_block_with_instrs(program):
    for fn in program.functions.values():
        for bb in fn.blocks.values():
            if bb.instrs:
                return bb
    raise AssertionError("no instructions")


def test_instruction_mutation_changes_digest():
    spec = all_workloads()["backprop"]()
    before = fingerprint_program(spec.program)
    bb = _first_block_with_instrs(spec.program)
    bb.instrs[0] = dataclasses.replace(
        bb.instrs[0], src_line=bb.instrs[0].src_line + 1000
    )
    assert fingerprint_program(spec.program) != before


def test_operand_type_distinguished():
    """int 1, float 1.0, and register "1" must hash differently."""
    mem = Memory()
    base = fingerprint_state([1], mem)
    assert fingerprint_state([1.0], Memory()) != base
    assert fingerprint_state(["1"], Memory()) != base
    assert fingerprint_state([True], Memory()) != base


def test_memory_contents_change_digest():
    m1 = Memory()
    p1 = m1.alloc(4)
    for i in range(4):
        m1.store(p1 + i, i)
    m2 = Memory()
    p2 = m2.alloc(4)
    for i in range(4):
        m2.store(p2 + i, i)
    assert fingerprint_state([], m1) == fingerprint_state([], m2)
    m2.store(p2 + 2, 99)
    assert fingerprint_state([], m1) != fingerprint_state([], m2)
