"""Canonical fingerprinting: stability and sensitivity.

The cache is only sound if the fingerprint is *stable* for equal
inputs (same workload factory -> same digest, across constructions)
and *sensitive* to every semantic detail (any program or state change
-> different digest).
"""

import dataclasses

import pytest

from repro.isa import fingerprint_program, fingerprint_state
from repro.isa.fingerprint import function_fingerprint, function_fingerprints
from repro.isa.program import Memory
from repro.workloads import all_workloads

WORKLOADS = sorted(all_workloads())


@pytest.mark.parametrize("name", WORKLOADS)
def test_program_fingerprint_stable(name):
    a = all_workloads()[name]()
    b = all_workloads()[name]()
    assert a.program is not b.program or a.program is b.program
    assert fingerprint_program(a.program) == fingerprint_program(b.program)


@pytest.mark.parametrize("name", WORKLOADS)
def test_state_fingerprint_stable(name):
    a = all_workloads()[name]()
    b = all_workloads()[name]()
    assert fingerprint_state(*a.make_state()) == fingerprint_state(
        *b.make_state()
    )


def test_distinct_programs_distinct_digests():
    digests = {
        name: fingerprint_program(all_workloads()[name]().program)
        for name in WORKLOADS
    }
    # "mm" is deliberately an alias of pb_gemm (the tracing demo):
    # same program, same digest, shared cache artifacts
    if "mm" in digests and "pb_gemm" in digests:
        assert digests.pop("mm") == digests["pb_gemm"]
    assert len(set(digests.values())) == len(digests)


def _first_block_with_instrs(program):
    for fn in program.functions.values():
        for bb in fn.blocks.values():
            if bb.instrs:
                return bb
    raise AssertionError("no instructions")


def test_instruction_mutation_changes_digest():
    spec = all_workloads()["backprop"]()
    before = fingerprint_program(spec.program)
    bb = _first_block_with_instrs(spec.program)
    bb.instrs[0] = dataclasses.replace(
        bb.instrs[0], src_line=bb.instrs[0].src_line + 1000
    )
    assert fingerprint_program(spec.program) != before


def test_operand_type_distinguished():
    """int 1, float 1.0, and register "1" must hash differently."""
    mem = Memory()
    base = fingerprint_state([1], mem)
    assert fingerprint_state([1.0], Memory()) != base
    assert fingerprint_state(["1"], Memory()) != base
    assert fingerprint_state([True], Memory()) != base


def test_memory_contents_change_digest():
    m1 = Memory()
    p1 = m1.alloc(4)
    for i in range(4):
        m1.store(p1 + i, i)
    m2 = Memory()
    p2 = m2.alloc(4)
    for i in range(4):
        m2.store(p2 + i, i)
    assert fingerprint_state([], m1) == fingerprint_state([], m2)
    m2.store(p2 + 2, 99)
    assert fingerprint_state([], m1) != fingerprint_state([], m2)


# -- function-granularity fingerprints (incremental re-analysis) -------------------


def _kmeans_program():
    return all_workloads()["kmeans"]().program


def _renumber(program, offset=1000):
    from repro.incr import renumber_uids

    return renumber_uids(program, offset)


def test_function_fingerprint_rename_invariant():
    """The function's own name is not part of its canonical digest."""
    from repro.isa.program import Function

    fn = _kmeans_program().functions["update_centers"]
    twin = Function(
        name="recenter",
        params=tuple(fn.params),
        entry=fn.entry,
        blocks=dict(fn.blocks),
        src_loop_depth=fn.src_loop_depth,
        src_file=fn.src_file,
    )
    assert function_fingerprint(fn) == function_fingerprint(twin)


def test_function_fingerprint_uid_renumber_invariant():
    base = function_fingerprints(_kmeans_program())
    renum = function_fingerprints(_renumber(_kmeans_program()))
    assert base == renum


def test_function_fingerprint_body_edit_is_local():
    """A one-function edit changes that function's digest and no
    other's."""
    from repro.incr import append_sink_instr

    prog = _kmeans_program()
    base = function_fingerprints(prog)
    edited = function_fingerprints(append_sink_instr(prog, "assign_points"))
    assert edited["assign_points"] != base["assign_points"]
    assert edited["main"] == base["main"]
    assert edited["update_centers"] == base["update_centers"]


def test_transitive_fingerprint_propagates_to_callers():
    """Editing a leaf changes the transitive hash of every function
    that can reach it -- and of nothing else."""
    from repro.incr import append_sink_instr
    from repro.isa.fingerprint import transitive_fingerprints

    prog = _kmeans_program()
    base = transitive_fingerprints(prog)
    edited = transitive_fingerprints(append_sink_instr(prog, "assign_points"))
    assert edited["assign_points"] != base["assign_points"]
    assert edited["main"] != base["main"]  # main calls assign_points
    # update_centers cannot reach assign_points: untouched
    assert edited["update_centers"] == base["update_centers"]


def test_reordered_definitions_hash_identically():
    """Function definition order is not semantic: the program token
    stream traverses functions in sorted order."""
    from repro.isa.program import Program

    prog = _kmeans_program()
    shuffled = Program(
        functions={
            name: prog.functions[name]
            for name in reversed(list(prog.functions))
        },
        main=prog.main,
        name=prog.name,
    )
    assert list(shuffled.functions) != list(prog.functions)
    assert fingerprint_program(prog) == fingerprint_program(shuffled)


def test_function_tokens_are_boundary_tagged():
    """Every function stream opens with a length-prefixed header and
    closes with an explicit end marker, so program streams can never
    concatenate ambiguously."""
    from repro.isa.fingerprint import function_tokens

    for name, fn in _kmeans_program().functions.items():
        toks = list(function_tokens(fn))
        assert toks[0].startswith(f"func[{len(name)}]:{name}:")
        assert toks[-1] == "end"


def test_block_fingerprints_are_block_local():
    """An entry-block edit must not ripple into later blocks'
    digests (ordinals are block-local)."""
    from repro.incr import append_sink_instr
    from repro.isa.fingerprint import block_fingerprints

    prog = _kmeans_program()
    fn = prog.functions["assign_points"]
    base = block_fingerprints(fn)
    edited_fn = append_sink_instr(prog, "assign_points").functions[
        "assign_points"
    ]
    edited = block_fingerprints(edited_fn)
    changed = [b for b in base if base[b] != edited[b]]
    assert changed == [fn.entry]
