"""ArtifactStore unit tests: round trip, corruption, version, LRU."""

import gzip
import json
import os
import time

import repro.store.store as store_mod
from repro.store import ArtifactStore, STORE_FORMAT_VERSION


def test_put_get_roundtrip(tmp_path):
    store = ArtifactStore(str(tmp_path))
    payload = {"x": [1, 2, 3], "y": {"nested": "ok"}}
    store.put("cp-abc", payload)
    assert store.get("cp-abc") == payload
    assert store.stats.puts == 1
    assert store.stats.hits == 1
    assert store.stats.misses == 0


def test_missing_key_is_miss(tmp_path):
    store = ArtifactStore(str(tmp_path))
    assert store.get("cp-nothere") is None
    assert store.stats.misses == 1
    assert store.stats.errors == 0


def test_deterministic_bytes(tmp_path):
    """Same payload -> same artifact bytes (gzip mtime pinned)."""
    store = ArtifactStore(str(tmp_path))
    store.put("k1", {"a": 1})
    first = open(store.path_of("k1"), "rb").read()
    time.sleep(0.01)
    store.put("k1", {"a": 1})
    assert open(store.path_of("k1"), "rb").read() == first


def test_truncated_artifact_is_miss_and_unlinked(tmp_path):
    store = ArtifactStore(str(tmp_path))
    store.put("k1", {"a": 1})
    path = store.path_of("k1")
    raw = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(raw[: len(raw) // 2])
    assert store.get("k1") is None
    assert store.stats.errors == 1
    assert not os.path.exists(path)


def test_garbage_json_is_miss(tmp_path):
    store = ArtifactStore(str(tmp_path))
    path = store.path_of("k1")
    with gzip.open(path, "wb") as fh:
        fh.write(b"this is not json {{{")
    assert store.get("k1") is None
    assert store.stats.errors == 1


def test_wrong_shape_is_miss(tmp_path):
    store = ArtifactStore(str(tmp_path))
    path = store.path_of("k1")
    with gzip.open(path, "wb") as fh:
        fh.write(json.dumps([1, 2, 3]).encode())
    assert store.get("k1") is None
    assert store.stats.errors == 1


def test_format_version_skew_is_miss(tmp_path, monkeypatch):
    store = ArtifactStore(str(tmp_path))
    store.put("k1", {"a": 1})
    monkeypatch.setattr(
        store_mod, "STORE_FORMAT_VERSION", STORE_FORMAT_VERSION + 1
    )
    assert store.get("k1") is None
    assert store.stats.errors == 1


def test_decoder_failure_demotes_to_miss(tmp_path):
    store = ArtifactStore(str(tmp_path))
    store.put("k1", {"a": 1})

    def decoder(payload):
        raise KeyError("stale payload semantics")

    assert store.load("k1", decoder) is None
    assert store.stats.hits == 0
    assert store.stats.misses == 1
    assert store.stats.errors == 1
    assert not os.path.exists(store.path_of("k1"))


def test_load_decodes(tmp_path):
    store = ArtifactStore(str(tmp_path))
    store.put("k1", {"a": 41})
    assert store.load("k1", lambda p: p["a"] + 1) == 42


def test_lru_eviction_oldest_first(tmp_path):
    store = ArtifactStore(str(tmp_path))
    for i in range(4):
        store.put(f"k{i}", {"blob": "x" * 2000, "i": i})
        os.utime(store.path_of(f"k{i}"), (i, i))
    size = os.path.getsize(store.path_of("k0"))
    capped = ArtifactStore(str(tmp_path), max_bytes=2 * size)
    evicted = capped.evict()
    assert evicted == 2
    assert not os.path.exists(capped.path_of("k0"))
    assert not os.path.exists(capped.path_of("k1"))
    assert os.path.exists(capped.path_of("k2"))
    assert os.path.exists(capped.path_of("k3"))
    assert capped.total_bytes() <= 2 * size


def test_hit_touches_mtime_for_lru(tmp_path):
    """A hit refreshes recency, protecting hot artifacts from eviction."""
    store = ArtifactStore(str(tmp_path))
    store.put("old", {"a": 1})
    store.put("hot", {"a": 2})
    os.utime(store.path_of("old"), (100, 100))
    os.utime(store.path_of("hot"), (50, 50))  # older on disk...
    store.get("hot")  # ...but just used
    size = os.path.getsize(store.path_of("old"))
    capped = ArtifactStore(str(tmp_path), max_bytes=size)
    capped.evict()
    assert not os.path.exists(capped.path_of("old"))
    assert os.path.exists(capped.path_of("hot"))


def test_put_evicts_when_capped(tmp_path):
    store = ArtifactStore(str(tmp_path), max_bytes=1)
    store.put("k1", {"a": 1})
    store.put("k2", {"a": 2})
    assert store.stats.evictions >= 1
    assert store.total_bytes() <= 1 or len(store.entries()) <= 1


def test_clear(tmp_path):
    store = ArtifactStore(str(tmp_path))
    store.put("k1", {"a": 1})
    store.put("k2", {"a": 2})
    store.clear()
    assert store.entries() == []
    assert store.get("k1") is None
