"""Warm-path correctness: a cache must be invisible in the results.

Cold-vs-warm byte identity across the full workload registry on both
engines, staged invalidation (program mutation / option change /
format bump -> orderly miss; corrupt artifact -> miss, never a crash),
stage-1 reuse under stage-2 option changes, and a green crosscheck on
a fully warm cache.
"""

import dataclasses
import gzip
import os

import pytest

import repro.store.keys as keys_mod
import repro.store.store as store_mod
from repro.feedback import compute_region_metrics
from repro.feedback.report import render_report
from repro.pipeline import analyze
from repro.runner import render_suite_table, run_suite
from repro.store import ArtifactStore, keys_for_spec
from repro.workloads import all_workloads

WORKLOADS = sorted(all_workloads())
# "mm" aliases pb_gemm (same program, same content-addressed keys), so
# whichever of the pair runs second would warm-hit the other's
# artifacts -- drop the alias to keep every first run genuinely cold;
# test_alias_workloads_share_artifacts pins the sharing itself
if "mm" in WORKLOADS:
    WORKLOADS.remove("mm")


def _metrics_row(result):
    spec = result.spec
    return compute_region_metrics(
        result.folded,
        result.forest,
        result.control.callgraph,
        region_funcs=spec.region_funcs,
        label=spec.region_label or spec.name,
        ld_src=spec.ld_src,
        fusion_heuristic=spec.fusion_heuristic,
    ).row()


@pytest.mark.parametrize("engine", ("fast", "reference"))
def test_cold_vs_warm_identical_full_registry(tmp_path, engine):
    """Every workload, cold then warm: byte-identical report, metrics
    row, schedule tree, and run statistics."""
    store = ArtifactStore(str(tmp_path / engine))
    for name in WORKLOADS:
        cold = analyze(all_workloads()[name](), engine=engine, store=store)
        assert not cold.timings.cache_hit, name
        warm = analyze(all_workloads()[name](), engine=engine, store=store)
        assert warm.timings.cache_hit, name
        assert warm.timings.stage1_cached and warm.timings.stage2_cached

        assert render_report(cold.forest, cold.plans) == render_report(
            warm.forest, warm.plans
        ), name
        assert _metrics_row(cold) == _metrics_row(warm), name
        assert (
            cold.schedule_tree.render_text()
            == warm.schedule_tree.render_text()
        ), name
        assert (
            cold.ddg_profile.builder.instr_count
            == warm.ddg_profile.builder.instr_count
        )
        assert (
            cold.control.stats.dyn_instrs == warm.control.stats.dyn_instrs
        )
        assert dict(cold.ddg_profile.stats.per_opcode) == dict(
            warm.ddg_profile.stats.per_opcode
        )
        assert cold.control.wall_seconds == warm.control.wall_seconds
        assert len(cold.plans) == len(warm.plans)


def test_alias_workloads_share_artifacts(tmp_path):
    """"mm" is pb_gemm under its colloquial name: content addressing
    makes the alias warm-hit the original's artifacts."""
    store = ArtifactStore(str(tmp_path))
    cold = analyze(all_workloads()["pb_gemm"](), store=store)
    assert not cold.timings.cache_hit
    aliased = analyze(all_workloads()["mm"](), store=store)
    assert aliased.timings.cache_hit
    assert aliased.timings.stage1_cached and aliased.timings.stage2_cached


def test_program_mutation_invalidates(tmp_path):
    store = ArtifactStore(str(tmp_path))
    spec = all_workloads()["nw"]()
    analyze(spec, store=store)

    mutated = all_workloads()["nw"]()
    for fn in mutated.program.functions.values():
        for bb in fn.blocks.values():
            if bb.instrs:
                bb.instrs[0] = dataclasses.replace(
                    bb.instrs[0], src_line=4242
                )
                break
        break
    keys_orig = keys_for_spec(
        spec, engine="fast", fuel=50_000_000, max_pieces=6, clamp=None,
        track_anti_output=True, build_schedule_tree=True,
    )
    keys_mut = keys_for_spec(
        mutated, engine="fast", fuel=50_000_000, max_pieces=6, clamp=None,
        track_anti_output=True, build_schedule_tree=True,
    )
    assert keys_orig.program_digest != keys_mut.program_digest
    assert keys_orig.stage1 != keys_mut.stage1
    assert keys_orig.stage2 != keys_mut.stage2

    result = analyze(mutated, store=store)
    assert not result.timings.stage1_cached
    assert not result.timings.stage2_cached


def test_option_change_reuses_stage1(tmp_path):
    """A stage-2-only option change misses the folded DDG but still
    reuses the cached ControlProfile."""
    store = ArtifactStore(str(tmp_path))
    spec = all_workloads()["nw"]()
    analyze(spec, store=store, max_pieces=6)

    again = analyze(all_workloads()["nw"](), store=store, max_pieces=4)
    assert again.timings.stage1_cached
    assert not again.timings.stage2_cached
    assert not again.timings.cache_hit

    # and the changed-option run is itself cached now
    third = analyze(all_workloads()["nw"](), store=store, max_pieces=4)
    assert third.timings.cache_hit


def test_engine_and_fuel_are_stage1_inputs(tmp_path):
    spec = all_workloads()["nw"]()
    base = dict(
        max_pieces=6, clamp=None,
        track_anti_output=True, build_schedule_tree=True,
    )
    k1 = keys_for_spec(spec, engine="fast", fuel=50_000_000, **base)
    k2 = keys_for_spec(spec, engine="reference", fuel=50_000_000, **base)
    k3 = keys_for_spec(spec, engine="fast", fuel=1_000_000, **base)
    assert len({k1.stage1, k2.stage1, k3.stage1}) == 3
    assert len({k1.stage2, k2.stage2, k3.stage2}) == 3


def test_format_bump_invalidates(tmp_path, monkeypatch):
    store = ArtifactStore(str(tmp_path))
    spec = all_workloads()["nw"]()
    analyze(spec, store=store)

    monkeypatch.setattr(
        store_mod, "STORE_FORMAT_VERSION",
        store_mod.STORE_FORMAT_VERSION + 1,
    )
    monkeypatch.setattr(
        keys_mod, "STORE_FORMAT_VERSION",
        keys_mod.STORE_FORMAT_VERSION + 1,
    )
    result = analyze(all_workloads()["nw"](), store=store)
    assert not result.timings.stage1_cached
    assert not result.timings.stage2_cached


def _artifact_paths(store, prefix):
    return [
        os.path.join(store.objects_dir, n)
        for n in os.listdir(store.objects_dir)
        if n.startswith(prefix)
    ]


@pytest.mark.parametrize("prefix", ("cp-", "ddg-"))
def test_truncated_artifact_never_crashes(tmp_path, prefix):
    store = ArtifactStore(str(tmp_path))
    cold = analyze(all_workloads()["nw"](), store=store)
    for path in _artifact_paths(store, prefix):
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(raw[: len(raw) // 3])

    warm = analyze(all_workloads()["nw"](), store=store)
    assert not warm.timings.cache_hit
    assert store.stats.errors >= 1
    assert render_report(cold.forest, cold.plans) == render_report(
        warm.forest, warm.plans
    )
    # the corrupt artifact was dropped and replaced; next run is warm
    healed = analyze(all_workloads()["nw"](), store=store)
    assert healed.timings.cache_hit


def test_garbage_artifact_never_crashes(tmp_path):
    store = ArtifactStore(str(tmp_path))
    analyze(all_workloads()["nw"](), store=store)
    for path in _artifact_paths(store, "ddg-"):
        with gzip.open(path, "wb") as fh:
            fh.write(b'{"format": 1, "data": {"wat": []}}')
    warm = analyze(all_workloads()["nw"](), store=store)
    assert not warm.timings.stage2_cached  # decode failed -> recomputed
    assert warm.timings.stage1_cached


def test_crosscheck_green_on_warm_cache(tmp_path):
    """The soundness sanitizers must pass against decoded artifacts
    (they recount dependence streams on the *other* engine)."""
    store = ArtifactStore(str(tmp_path))
    for name in ("backprop", "nw", "b+tree"):
        analyze(all_workloads()[name](), store=store)
    for name in ("backprop", "nw", "b+tree"):
        warm = analyze(all_workloads()[name](), store=store, crosscheck=True)
        assert warm.timings.cache_hit, name
        assert warm.crosscheck is not None
        assert not warm.crosscheck.violations, (
            name, warm.crosscheck.render(),
        )


def test_suite_shares_store_and_reports_stats(tmp_path):
    names = ["backprop", "nw", "lud"]
    cache_dir = str(tmp_path / "suite-cache")
    cold = run_suite(
        names, jobs=2, with_report=True, cache_dir=cache_dir
    )
    warm = run_suite(
        names, jobs=2, with_report=True, cache_dir=cache_dir
    )
    assert all(r.ok for r in cold + warm)
    assert not any(r.cache_hit for r in cold)
    assert all(r.cache_hit for r in warm)
    assert [c.report for c in cold] == [w.report for w in warm]
    for w in warm:
        assert w.cache_stats is not None
        assert w.cache_stats["hits"] >= 2
        assert w.cache_stats["misses"] == 0
        # per-stage split is populated and consistent
        assert w.t_instr1 >= 0 and w.t_instr2_fold >= 0
        assert w.t_feedback >= 0
        assert (
            w.t_instr1 + w.t_instr2_fold + w.t_feedback <= w.wall_seconds
        )

    table = render_suite_table(warm)
    assert "cache:" in table
    assert "warm" in table
    cold_table = render_suite_table(cold)
    assert "cold" in cold_table


def test_suite_without_cache_has_no_cache_column(tmp_path):
    results = run_suite(["nw"], jobs=1)
    assert results[0].cache_stats is None
    table = render_suite_table(results)
    assert "cache" not in table


def test_suite_cache_max_bytes_evicts(tmp_path):
    cache_dir = str(tmp_path / "tiny")
    results = run_suite(
        ["backprop", "nw", "lud"],
        jobs=1,
        cache_dir=cache_dir,
        cache_max_bytes=1,
    )
    assert all(r.ok for r in results)
    total_evictions = sum(
        r.cache_stats["evictions"] for r in results if r.cache_stats
    )
    assert total_evictions >= 1
    store = ArtifactStore(cache_dir)
    assert store.total_bytes() <= 1
