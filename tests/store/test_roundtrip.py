"""Codec round trips: decoded artifacts must equal what was encoded.

Two properties per codec:

* **faithfulness** -- the decoded value is semantically identical to
  the original (same rendering, same downstream behavior);
* **fixpoint** -- ``encode(decode(encode(x))) == encode(x)``, so a
  cached artifact re-encodes to the same bytes forever (no drift).
"""

from fractions import Fraction

import pytest

from repro.pipeline import analyze, profile_control
from repro.poly.affine import AffineExpr, AffineFunction
from repro.poly.codec import (
    decode_expr,
    decode_fraction,
    decode_imap,
    decode_iset,
    decode_polyhedron,
    encode_expr,
    encode_fraction,
    encode_imap,
    encode_iset,
    encode_polyhedron,
)
from repro.poly.pmap import IMap
from repro.poly.polyhedron import Polyhedron
from repro.poly.pset import ISet, Space
from repro.folding.codec import decode_folded_ddg, encode_folded_ddg
from repro.schedule.codec import decode_dep_vectors, encode_dep_vectors
from repro.store.artifacts import (
    decode_control_profile,
    decode_schedule_tree,
    decode_stage2,
    encode_control_profile,
    encode_schedule_tree,
    encode_stage2,
)
from repro.workloads import all_workloads

#: enough variety to cover every codec path: loops, recursion
#: (btree), multi-piece domains, reductions, SCEV streams
SAMPLE = ("backprop", "nw", "lud", "b+tree")


# -- poly leaf codecs ---------------------------------------------------------------


def test_polyhedron_roundtrip():
    p = Polyhedron(
        2, eqs=[(2, -2, 4)], ineqs=[(3, 0, 9), (0, -1, 7), (1, 1, 0)]
    )
    enc = encode_polyhedron(p)
    dec = decode_polyhedron(enc)
    assert dec.dim == p.dim
    assert dec.eqs == p.eqs
    assert dec.ineqs == p.ineqs
    assert encode_polyhedron(dec) == enc


def test_iset_roundtrip():
    s = ISet(
        Space(["i", "j"]),
        [
            Polyhedron(2, ineqs=[(1, 0, 0), (-1, 0, 9)]),
            Polyhedron(2, eqs=[(1, -1, 0)]),
        ],
    )
    enc = encode_iset(s)
    dec = decode_iset(enc)
    assert str(dec) == str(s)
    assert encode_iset(dec) == enc


def test_expr_roundtrip():
    e = AffineExpr([2, -3], 7, 2)
    enc = encode_expr(e)
    dec = decode_expr(enc)
    assert (dec.coeffs, dec.const, dec.den) == (e.coeffs, e.const, e.den)
    assert encode_expr(dec) == enc


def test_imap_roundtrip():
    m = IMap(
        Space(["i"]),
        Space(["o"]),
        [
            (
                Polyhedron(1, ineqs=[(1, 0), (-1, 5)]),
                AffineFunction([AffineExpr([1], 1)]),
            )
        ],
    )
    enc = encode_imap(m)
    dec = decode_imap(enc)
    assert str(dec.in_space) == str(m.in_space)
    assert str(dec.out_space) == str(m.out_space)
    assert len(dec.pieces) == len(m.pieces)
    assert encode_imap(dec) == enc


def test_fraction_roundtrip():
    assert decode_fraction(encode_fraction(Fraction(-7, 3))) == Fraction(
        -7, 3
    )
    assert decode_fraction(encode_fraction(None)) is None
    assert encode_fraction(Fraction(4, 2)) == [2, 1]


# -- stage 1: control profile -------------------------------------------------------


@pytest.mark.parametrize("name", SAMPLE)
def test_control_profile_roundtrip(name):
    spec = all_workloads()[name]()
    control = profile_control(spec)
    enc = encode_control_profile(control)
    dec = decode_control_profile(enc)

    assert set(dec.cfgs) == set(control.cfgs)
    for f, cfg in control.cfgs.items():
        assert dec.cfgs[f].entry == cfg.entry
        assert set(dec.cfgs[f].nodes) == set(cfg.nodes)
        assert set(dec.cfgs[f].edges) == set(cfg.edges)
    assert dec.callgraph.root == control.callgraph.root
    assert set(dec.callgraph.nodes) == set(control.callgraph.nodes)
    assert set(dec.callgraph.edges) == set(control.callgraph.edges)
    # recomputed derived structures match (pure functions of the graphs)
    assert set(dec.forests) == set(control.forests)
    for f in control.forests:
        want = sorted(repr(lp) for lp in control.forests[f].all_loops)
        got = sorted(repr(lp) for lp in dec.forests[f].all_loops)
        assert got == want
    assert sorted(repr(c) for c in dec.rcs.components) == sorted(
        repr(c) for c in control.rcs.components
    )
    assert dec.stats.dyn_instrs == control.stats.dyn_instrs
    assert dict(dec.stats.per_opcode) == dict(control.stats.per_opcode)
    assert dec.wall_seconds == control.wall_seconds
    # fixpoint
    assert encode_control_profile(dec) == enc


# -- stage 2: folded DDG + meta + dependence vectors --------------------------------


@pytest.mark.parametrize("name", SAMPLE)
def test_folded_ddg_fixpoint(name):
    spec = all_workloads()[name]()
    result = analyze(spec)
    enc = encode_folded_ddg(result.folded)
    dec = decode_folded_ddg(enc, spec.program)

    assert list(dec.statements) == list(result.folded.statements)
    assert list(dec.deps) == list(result.folded.deps)
    for key, fs in result.folded.statements.items():
        got = dec.statements[key]
        assert got.stmt.instr is fs.stmt.instr  # resolved, not copied
        assert got.count == fs.count
        assert got.exact == fs.exact
        assert got.is_scev == fs.is_scev
        assert str(got.domain) == str(fs.domain)
    assert encode_folded_ddg(dec) == enc


@pytest.mark.parametrize("name", SAMPLE)
def test_dep_vectors_roundtrip(name):
    spec = all_workloads()[name]()
    result = analyze(spec)
    enc = encode_dep_vectors(result.forest.deps)
    dec = decode_dep_vectors(enc, result.folded)
    assert len(dec) == len(result.forest.deps)
    for got, want in zip(dec, result.forest.deps):
        assert got.dep.key == want.dep.key
        # shares the FoldedDDG's dep object, as on the cold path
        assert got.dep is result.folded.deps[want.dep.key]
        assert got.signs == want.signs
        assert got.bounds == want.bounds
        assert got.is_reduction == want.is_reduction
    assert encode_dep_vectors(dec) == enc


def test_dep_vectors_unknown_stream_raises():
    spec = all_workloads()["nw"]()
    result = analyze(spec)
    enc = encode_dep_vectors(result.forest.deps)
    enc[0]["src"] = [999999, 999999]
    with pytest.raises(ValueError):
        decode_dep_vectors(enc, result.folded)


@pytest.mark.parametrize("name", SAMPLE)
def test_schedule_tree_roundtrip(name):
    spec = all_workloads()[name]()
    result = analyze(spec)
    tree = result.schedule_tree
    enc = encode_schedule_tree(tree)
    dec = decode_schedule_tree(enc)
    assert dec.render_text() == tree.render_text()
    assert encode_schedule_tree(dec) == enc
    assert decode_schedule_tree(None) is None
    assert encode_schedule_tree(None) is None


@pytest.mark.parametrize("name", SAMPLE)
def test_stage2_roundtrip(name):
    spec = all_workloads()[name]()
    result = analyze(spec)
    enc = encode_stage2(
        result.folded, result.ddg_profile, result.forest.deps
    )
    folded, ddgp, vectors = decode_stage2(enc, spec.program)
    assert (
        ddgp.builder.instr_count
        == result.ddg_profile.builder.instr_count
    )
    assert ddgp.stats.dyn_instrs == result.ddg_profile.stats.dyn_instrs
    assert ddgp.wall_seconds == result.ddg_profile.wall_seconds
    assert (
        ddgp.builder.schedule_tree.render_text()
        == result.schedule_tree.render_text()
    )
    assert len(vectors) == len(result.forest.deps)
    assert (
        encode_stage2(folded, ddgp, vectors) == enc
    )
