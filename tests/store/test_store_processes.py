"""Cross-process safety of the shared store directory.

PR 4's RLock made one :class:`ArtifactStore` handle thread-safe; these
tests cover the multi-*process* story that replica daemons and
process-pool workers rely on: ``flock``-guarded LRU eviction and a
persisted ``stats.json`` whose read-modify-write merges never lose
counts.
"""

import json
import multiprocessing
import os

from repro.store import ArtifactStore
from repro.store.store import _InterProcessLock


def _payload(i):
    return {"value": "x" * 512, "i": i}


class TestInterProcessLock:
    def test_reentrant_within_a_thread(self, tmp_path):
        lock = _InterProcessLock(str(tmp_path / ".lock"))
        with lock:
            with lock:  # evict-inside-flush nesting
                pass
        with lock:
            pass

    def test_excludes_other_processes(self, tmp_path):
        """While the parent holds the flock, a child process cannot
        acquire it; the moment the parent releases, the child runs."""
        path = str(tmp_path / ".lock")
        lock = _InterProcessLock(path)
        ctx = multiprocessing.get_context()
        acquired = ctx.Event()

        def _child(event):
            with _InterProcessLock(path):
                event.set()

        with lock:
            proc = ctx.Process(target=_child, args=(acquired,))
            proc.start()
            assert not acquired.wait(0.5), "child acquired a held lock"
        assert acquired.wait(10), "child never acquired after release"
        proc.join(timeout=10)
        assert proc.exitcode == 0


def _evict_worker(root, max_bytes, start, conn):
    store = ArtifactStore(root, max_bytes=max_bytes)
    for i in range(start, start + 20):
        store.put(f"{'k%04d' % i:0<64}", _payload(i))
    conn.send(store.stats.evictions)
    conn.close()


class TestConcurrentEviction:
    def test_two_processes_never_evict_below_the_cap(self, tmp_path):
        """Two processes hammering puts with a tight LRU cap end with
        the directory at (not far below) the cap: the flock serializes
        the scan-and-delete so they cannot both walk the same tail."""
        root = str(tmp_path / "store")
        probe = ArtifactStore(root)
        probe.put("seed".ljust(64, "0"), _payload(0))
        artifact_size = probe.total_bytes()
        max_bytes = artifact_size * 6
        ctx = multiprocessing.get_context()
        procs, conns = [], []
        for n in range(2):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_evict_worker,
                args=(root, max_bytes, 100 + n * 50, child),
            )
            proc.start()
            procs.append(proc)
            conns.append(parent)
        evictions = [conn.recv() for conn in conns]
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        final = ArtifactStore(root, max_bytes=max_bytes)
        assert final.total_bytes() <= max_bytes
        # both processes made progress and at least one evicted
        assert sum(evictions) > 0
        # the survivors are intact, decodable artifacts
        kept = 0
        for name in os.listdir(final.objects_dir):
            key = name[: -len(".json.gz")]
            if final.get(key) is not None:
                kept += 1
        assert kept >= 1


def _stats_worker(root, conn):
    store = ArtifactStore(root)
    for i in range(25):
        store.stats.puts += 1  # simulate put accounting
        store.flush_stats()
    conn.send(True)
    conn.close()


class TestPersistedStats:
    def test_flush_merges_deltas_across_handles(self, tmp_path):
        root = str(tmp_path / "store")
        a = ArtifactStore(root)
        b = ArtifactStore(root)
        a.put("a".ljust(64, "0"), _payload(1))
        b.get("b".ljust(64, "0"))  # miss
        a.flush_stats()
        totals = b.flush_stats()
        assert totals["puts"] == 1
        assert totals["misses"] == 1
        assert a.persistent_stats() == totals

    def test_flush_is_idempotent_per_delta(self, tmp_path):
        """Re-flushing without new activity adds nothing: only the
        unflushed delta moves to disk."""
        store = ArtifactStore(str(tmp_path / "store"))
        store.put("a".ljust(64, "0"), _payload(1))
        first = store.flush_stats()
        second = store.flush_stats()
        assert first == second

    def test_concurrent_flushes_lose_no_counts(self, tmp_path):
        root = str(tmp_path / "store")
        ArtifactStore(root)  # create the directory layout
        ctx = multiprocessing.get_context()
        procs, conns = [], []
        for _ in range(3):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_stats_worker, args=(root, child))
            proc.start()
            procs.append(proc)
            conns.append(parent)
        for conn in conns:
            assert conn.recv() is True
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        totals = ArtifactStore(root).persistent_stats()
        assert totals["puts"] == 75  # 3 processes x 25, none lost

    def test_corrupt_stats_file_degrades_to_zero(self, tmp_path):
        root = str(tmp_path / "store")
        store = ArtifactStore(root)
        with open(store.stats_path, "w") as fh:
            fh.write("{not json")
        assert store.persistent_stats() is None
        store.stats.hits += 2
        totals = store.flush_stats()  # overwrites the corrupt file
        assert totals["hits"] == 2
        assert json.load(open(store.stats_path))["hits"] == 2
