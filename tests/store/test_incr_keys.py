"""Keys of the incremental store levels (``man-`` and ``rgn-``)."""

import pytest

from repro.store import keys_for_spec
from repro.store.keys import derive_keys, manifest_key
from repro.workloads import all_workloads


def _keys(**overrides):
    opts = dict(
        engine="fast", fuel=50_000_000, max_pieces=6, clamp=None,
        track_anti_output=True, build_schedule_tree=True,
    )
    opts.update(overrides)
    return keys_for_spec(all_workloads()["kmeans"](), **opts)


def test_manifest_key_depends_on_program_digest_alone():
    a = _keys()
    b = _keys(engine="reference", fuel=1_000, clamp=7)
    assert a.manifest == b.manifest == manifest_key(a.program_digest)
    assert a.manifest.startswith("man-")
    assert manifest_key("ab" * 32) != a.manifest


def test_region_keys_distinct_per_function_and_options():
    a = _keys()
    funcs = sorted(all_workloads()["kmeans"]().program.functions)
    region_keys = [a.region(f) for f in funcs]
    assert len(set(region_keys)) == len(funcs)
    assert all(k.startswith("rgn-") for k in region_keys)
    # a stage-2-affecting option change moves every region key
    b = _keys(clamp=7)
    assert all(a.region(f) != b.region(f) for f in funcs)
    # the stage-2 key moved too (regions extend its material)
    assert a.stage2 != b.stage2


def test_region_requires_region_base():
    bare = derive_keys(
        "ab" * 32, "cd" * 32, engine="fast", fuel=1, max_pieces=6,
        clamp=None, track_anti_output=True, build_schedule_tree=True,
    )
    assert bare.region_base  # derive_keys always fills it
    from repro.store.keys import ArtifactKeys

    stripped = ArtifactKeys(
        stage1=bare.stage1,
        stage2=bare.stage2,
        program_digest=bare.program_digest,
        state_digest=bare.state_digest,
    )
    with pytest.raises(ValueError, match="region_base"):
        stripped.region("main")


def test_adversarial_function_names_cannot_collide():
    """The region key length-prefixes the function name, so a name
    embedding the separator cannot forge another function's key."""
    a = _keys()
    assert a.region("m|region[1]=x") != a.region("m")
