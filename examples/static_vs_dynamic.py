"""Static vs dynamic: why the paper profiles binaries.

The ``bpnn_layerforward`` kernel accesses its weight matrix through an
array of row pointers.  A static polyhedral tool (Polly; here our
mini-Polly baseline) cannot model the indirection and gives up; the
dynamic pipeline observes the actual addresses, folds them into exact
affine access functions, and unlocks the interchange+SIMD feedback.

Run:  python examples/static_vs_dynamic.py
"""

from repro.pipeline import analyze
from repro.staticpoly import analyze_static
from repro.workloads.examples_paper import layerforward_kernel


def main() -> None:
    spec = layerforward_kernel(n1=15, n2=10)

    print("== static analysis (Polly baseline) ==")
    report = analyze_static(spec.program, ["bpnn_layerforward"])
    print(f"whole region modelable: {report.whole_region_modelable}")
    print(f"failure reasons: {report.reasons} "
          "(R=call, C=cfg, B=bounds, F=access, A=alias, P=base-ptr)")
    for nest in report.nests:
        verdict = "modelable" if nest.modelable else f"fails ({nest.reasons})"
        print(f"  nest at {nest.func}/{nest.header} depth {nest.depth}D: "
              f"{verdict}")

    print("\n== dynamic analysis (poly-prof) ==")
    result = analyze(spec)
    folded = result.folded
    aff = 100.0 * folded.affine_ops() / folded.dyn_ops()
    print(f"fully affine: {aff:.0f}% of dynamic operations")
    for fs in folded.statements.values():
        if fs.stmt.instr.is_load and fs.depth == 2 and fs.label_fn:
            addr = fs.label_fn.exprs[0]
            print(f"  load uid {fs.stmt.uid}: access function "
                  f"addr = {addr.pretty(['cj', 'ck'])}")
    for plan in result.plans:
        if plan.leaf.depth == 2 and plan.steps:
            print("  suggested transformation:")
            for s in plan.steps:
                print(f"    {s}")


if __name__ == "__main__":
    main()
