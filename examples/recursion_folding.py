"""Recursion folding: watch the dynamic IIV stay bounded.

Re-creates the paper's Fig. 3 Example 2: a recursive function ``B``
calling a leaf ``C`` at every activation.  The calling-context tree
grows linearly with the recursion depth, but the dynamic IIV folds the
recursion into a single loop dimension whose induction variable counts
activations -- so C's instances fold into the 1-D domain
``{ (i) : 0 <= i < depth }`` regardless of how deep the recursion went.

Run:  python examples/recursion_folding.py [depth]
"""

import sys

from repro.cfg import (
    ControlStructureBuilder,
    LoopEventGenerator,
    build_loop_forest,
    build_recursive_component_set,
)
from repro.folding import FoldingSink
from repro.iiv import CallingContextTree, DynamicIIV
from repro.isa import run_program
from repro.pipeline import profile_control, profile_ddg
from repro.workloads.examples_paper import build_fig3_example2


def main() -> None:
    depth = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    spec = build_fig3_example2(depth=depth)

    # 1. the classic CCT grows with the recursion depth
    cct = CallingContextTree()
    args, mem = spec.make_state()
    run_program(spec.program, args=args, memory=mem, observers=[cct])
    print(f"recursion depth {depth}: CCT depth = {cct.depth()}, "
          f"{cct.node_count()} nodes")

    # 2. the dynamic IIV stays bounded: replay the trace and track it
    csb = ControlStructureBuilder(record_trace=True)
    args, mem = spec.make_state()
    run_program(spec.program, args=args, memory=mem, observers=[csb])
    forests = {
        f: build_loop_forest(f, c.nodes, c.edges, c.entry)
        for f, c in csb.cfgs.items()
    }
    rcs = build_recursive_component_set(
        csb.callgraph.nodes, csb.callgraph.edges, csb.callgraph.root
    )
    print(f"recursive components: {rcs.components}")

    gen = LoopEventGenerator(forests, rcs)
    diiv = DynamicIIV()
    max_len = 0
    print("\nIIV trace through the recursive region:")
    for ev in csb.trace:
        emitted = list(gen.process(ev))
        for le in emitted:
            diiv.apply(le)
        if any(le.kind in ("Ec", "Ic", "Ir", "Xr") for le in emitted):
            print(f"  {' '.join(str(e) for e in emitted):36s} "
                  f"-> {diiv.pretty()}")
        max_len = max(max_len, len(diiv.pretty()))
    print(f"\nmax IIV rendering length: {max_len} chars "
          f"(independent of depth -- try larger arguments)")

    # 3. the folded domain indexes C by recursion depth
    control = profile_control(spec)
    sink = FoldingSink()
    profile_ddg(spec, control, sink=sink)
    folded = sink.finalize()
    for fs in folded.statements.values():
        if fs.stmt.func == "C" and fs.depth == 1:
            print(f"\nC's folded domain: {fs.domain.pretty()} "
                  f"({fs.count} instances)")
            break


if __name__ == "__main__":
    main()
