"""Quickstart: profile a kernel and read POLY-PROF's feedback.

Builds a small matrix-multiply-like kernel through the structured
frontend (which lowers it to branch-level mini-ISA code), runs the
full pipeline -- dynamic CFG recovery, loop events, dynamic IIVs,
shadow-memory dependence profiling, polyhedral folding, dependence
analysis -- and prints the suggested transformations.

Run:  python examples/quickstart.py
"""

from repro.feedback import render_report
from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, analyze

N = 8


def build_matmul() -> ProgramSpec:
    pb = ProgramBuilder("matmul")
    with pb.function("main", ["A", "B", "C", "n"]) as f:
        with f.loop(0, "n", line=10) as i:
            with f.loop(0, "n", line=11) as j:
                acc = f.set(f.fresh_reg("acc"), 0.0)
                with f.loop(0, "n", line=12) as k:
                    a = f.load("A", index=f.add(f.mul(i, "n"), k), line=13)
                    b = f.load("B", index=f.add(f.mul(k, "n"), j), line=13)
                    f.fadd(acc, f.fmul(a, b), into=acc)
                f.store("C", acc, index=f.add(f.mul(i, "n"), j), line=14)
        f.halt()

    def make_state():
        mem = Memory()
        a = mem.alloc_array([float((i * 7) % 5) for i in range(N * N)])
        b = mem.alloc_array([float((i * 3) % 4) for i in range(N * N)])
        c = mem.alloc(N * N, init=0.0)
        return (a, b, c, N), mem

    return ProgramSpec("matmul", pb.build(), make_state)


def main() -> None:
    spec = build_matmul()
    result = analyze(spec)

    print(f"profiled {result.ddg_profile.builder.instr_count} dynamic "
          f"instructions")
    print(f"compact DDG: {result.folded.stmt_count()} statements, "
          f"{len(result.folded.deps)} dependence relations")
    aff = 100.0 * result.folded.affine_ops() / result.folded.dyn_ops()
    print(f"fully affine: {aff:.0f}% of dynamic operations\n")

    print(render_report(result.forest, result.plans,
                        title="poly-prof feedback: matmul"))


if __name__ == "__main__":
    main()
