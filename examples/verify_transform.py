"""Verifying transformations polyhedrally (beyond the paper).

The paper's conclusion points at polyhedral equivalence checking as
the way to validate the hand-applied transformations it suggests.
This example shows the analysis-side version built into this
reproduction: the folded dependence relations *prove* (by exact
emptiness of violation sets) whether a reordering is legal -- and
produce a concrete witness iteration when it is not.

We build an in-place 1-D Jacobi under a time loop, then check three
schedules: the original, a (broken) plain loop interchange, and the
time-skewed interchange the band analysis recommends.

Run:  python examples/verify_transform.py
"""

from repro.isa import Memory, ProgramBuilder
from repro.pipeline import ProgramSpec, analyze
from repro.schedule import plan_nest, verify_plan
from repro.schedule.transform import NestPlan

N = 8


def build_jacobi() -> ProgramSpec:
    pb = ProgramBuilder("jacobi1d")
    with pb.function("main", ["A", "T", "n"]) as f:
        with f.loop(0, "T", line=1) as t:
            with f.loop(1, "n", line=2) as i:
                a = f.load("A", index=f.sub(i, 1))
                b = f.load("A", index=i)
                c = f.load("A", index=f.add(i, 1))
                v = f.fmul(0.3333, f.fadd(f.fadd(a, b), c))
                f.store("A", v, index=i, line=3)
        f.halt()

    def state():
        mem = Memory()
        a = mem.alloc_array([float(i % 5) for i in range(2 * N + 2)])
        return (a, N, 2 * N), mem

    return ProgramSpec("jacobi1d", pb.build(), state)


def main() -> None:
    result = analyze(build_jacobi())
    leaf = max(
        (n for n in result.forest.walk() if n.is_innermost()),
        key=lambda n: n.ops_total,
    )
    print(f"nest (t, i): skew found by the band analysis = "
          f"{leaf.skew_factor} (i' = i + t)")

    # 1. the recommended plan (skewed band) verifies
    plan = plan_nest(result.forest, leaf, None)
    res = verify_plan(result.forest, plan)
    print(f"\nrecommended plan {[str(s) for s in plan.steps]}")
    print(f"  -> legal={res.legal} ({res.checked} dependences checked)")

    # 2. a plain interchange without the skew is illegal: strip the
    #    recorded skews and ask for (i, t) order
    for n in result.forest.walk():
        n.skew_factor = None
    bad = NestPlan(leaf=leaf, permutation=(1, 0))
    res = verify_plan(result.forest, bad)
    print(f"\nplain interchange (i, t):")
    print(f"  -> legal={res.legal}")
    for v in res.violations[:2]:
        print(f"  violation: {v}")

    # 3. the identity schedule always verifies (sanity)
    ident = NestPlan(leaf=leaf, permutation=None)
    res = verify_plan(result.forest, ident)
    print(f"\noriginal schedule: legal={res.legal}")


if __name__ == "__main__":
    main()
