"""Case study I end to end: backprop feedback + annotated flame graph.

Reproduces the paper's section 7 workflow on the backprop workload:
profile the training step, locate the fat regions, print per-loop
properties (parallel / permutable / stride-0/1), print the suggested
structured transformation, estimate the speedup with the cache cost
model, and write the Fig. 7-style annotated flame graph SVG next to
this script.

Run:  python examples/backprop_feedback.py
"""

import os

from repro.feedback import (
    nest_report,
    render_flamegraph_svg,
    stride_scores,
)
from repro.machine import CostConfig, estimate_speedup
from repro.pipeline import analyze
from repro.schedule import plan_nest
from repro.workloads.backprop import build_backprop


def main() -> None:
    spec = build_backprop()
    result = analyze(spec)
    total = result.forest.total_ops()

    print("== fat regions (hotness from the dynamic schedule tree) ==")
    leaves = sorted(
        (n for n in result.forest.walk() if n.is_innermost()),
        key=lambda n: -n.ops_total,
    )
    for leaf in leaves[:4]:
        funcs = {s.stmt.func for s in leaf.stmts}
        pct = 100.0 * leaf.ops_total / total
        print(f"  {leaf.loop_id:28s} {pct:5.1f}%  in {sorted(funcs)}")

    print("\n== feedback for the two hot kernels ==")
    cost = CostConfig(simd_width=4, threads=4, thread_efficiency=0.5)
    for leaf in leaves[:2]:
        scores = stride_scores(leaf)
        plan = plan_nest(result.forest, leaf, scores)
        report = nest_report(result.forest, leaf, plan)
        print(f"\nnest {leaf.loop_id}:")
        for d in report.dims:
            print(
                f"  dim {d.loop_id}: parallel={d.parallel} "
                f"permutable={d.permutable} stride01={d.pct_stride01:.0f}%"
            )
        for step in plan.steps:
            print(f"  suggest: {step}")
        mem_stmts = [
            s for s in leaf.stmts
            if s.stmt.instr.is_mem and s.label_fn is not None and s.exact
        ]
        dom_stmt = max(
            (s for s in leaf.stmts if s.exact and s.depth == leaf.depth),
            key=lambda s: s.count,
            default=None,
        )
        if mem_stmts and dom_stmt is not None:
            domain = dom_stmt.domain.pieces[0]
            opp = sum(s.count for s in leaf.stmts) / max(domain.card(), 1)
            speedup, _, _ = estimate_speedup(
                mem_stmts, domain, opp,
                {"order": None},
                {"order": plan.permutation, "simd": plan.simd,
                 "parallel": bool(plan.parallel_dims)},
                cost,
            )
            print(f"  estimated speedup: {speedup:.1f}x "
                  "(paper measured 5.3x / 7.8x on a Xeon)")

    svg = render_flamegraph_svg(
        result.schedule_tree,
        title="poly-prof annotated flame graph: backprop",
    )
    out = os.path.join(os.path.dirname(__file__), "backprop_flamegraph.svg")
    with open(out, "w") as fh:
        fh.write(svg)
    print(f"\nflame graph written to {out}")


if __name__ == "__main__":
    main()
